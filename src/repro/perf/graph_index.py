"""One-time compilation of a temporal graph into query-ready indexes.

The evaluation hot paths repeatedly ask the same questions of the graph:
which edges leave this node, which objects carry this label, at which
times does this object satisfy a static condition.  The seed engines
answered them by walking the graph per frontier row — rebuilding
``frozenset`` adjacency copies and re-walking condition ASTs for every
row of every step.  A :class:`GraphIndex` answers them from structures
compiled once per graph and shared across queries and engines:

* adjacency as immutable tuples (no per-call copies);
* ``label → objects`` and ``(property, value) → objects`` buckets, used
  to seed frontiers with only the objects that can match a condition;
* per-object existence families (the coalesced ``IntervalSet``\\ s);
* memoized *condition tables*: for a static condition, the mapping from
  every satisfying object to its coalesced satisfaction times.

Use :func:`graph_index_for` to obtain the shared per-graph instance.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Optional, Union as TypingUnion

from repro.errors import UnsupportedFragmentError
from repro.lang.ast import (
    AndTest,
    EdgeTest,
    ExistsTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PathTest,
    PropEq,
    Test,
    TimeLt,
    TrueTest,
)
from repro.model.convert import tpg_to_itpg
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet, IntervalSetAccumulator
from repro.temporal.valued import ValuedIntervalSet

ObjectId = Hashable
TemporalGraph = TypingUnion[TemporalPropertyGraph, IntervalTPG]
#: Resolves a path condition to ``object → satisfaction times`` (engines that
#: support ``(?path)`` supply one; the dataflow fragment does not).
PathTestResolver = Callable[[PathTest], dict[ObjectId, IntervalSet]]


class CompiledCore:
    """The immutable compiled tables of one graph (the flat half of the index).

    A core is everything :class:`GraphIndex` derives from a graph that
    never changes *in place*: the dense-id object table, per-object
    existence/adjacency/property families, endpoint maps and the
    label / property candidate buckets.  It comes from one of two
    builders with the same attribute surface:

    * :meth:`from_graph` — the eager in-memory build (this class);
    * :class:`repro.store.artifact.AttachedCore` — the same attributes
      as mmap-backed lazy sections, attached zero-copy from a persistent
      ``repro-index/1`` artifact.

    :class:`GraphIndex` binds these attributes once and then treats them
    as its mutable working set: delta maintenance rebinds or writes
    through them (attached cores route writes to a per-map overlay, so
    the read-only artifact is never touched).
    """

    __slots__ = (
        "domain",
        "nodes",
        "edges",
        "objects",
        "object_id",
        "labels",
        "existence",
        "out_adjacency",
        "in_adjacency",
        "edge_source",
        "edge_target",
        "node_label_buckets",
        "edge_label_buckets",
        "prop_value_buckets",
        "properties",
    )

    @classmethod
    def from_graph(cls, graph: IntervalTPG) -> "CompiledCore":
        """Compile a core from an in-memory graph (one pass per object)."""
        core = cls()
        core.domain = graph.domain
        core.nodes = frozenset(graph.nodes())
        core.edges = frozenset(graph.edges())
        core.objects = tuple(graph.objects())
        #: Dense per-object integers in deterministic enumeration order.
        #: The coalescing frontier keys its rows by binding signature; the
        #: compact ids keep those signature tuples small and cheap to hash
        #: compared to the raw (often string) object identifiers.
        core.object_id = {obj: position for position, obj in enumerate(core.objects)}

        core.labels = {}
        core.existence = {}
        core.out_adjacency = {}
        core.in_adjacency = {}
        core.edge_source = {}
        core.edge_target = {}

        node_buckets: dict[str, list[ObjectId]] = {}
        edge_buckets: dict[str, list[ObjectId]] = {}
        prop_buckets: dict[tuple[str, Hashable], list[ObjectId]] = {}
        core.properties = {}

        for node in graph.nodes():
            core.labels[node] = graph.label(node)
            core.existence[node] = graph.existence(node)
            core.out_adjacency[node] = tuple(graph.out_edges(node))
            core.in_adjacency[node] = tuple(graph.in_edges(node))
            node_buckets.setdefault(graph.label(node), []).append(node)
        for edge in graph.edges():
            core.labels[edge] = graph.label(edge)
            core.existence[edge] = graph.existence(edge)
            src, tgt = graph.endpoints(edge)
            core.edge_source[edge] = src
            core.edge_target[edge] = tgt
            edge_buckets.setdefault(graph.label(edge), []).append(edge)
        for obj in core.objects:
            families = graph.properties(obj)
            core.properties[obj] = families
            for name, family in families.items():
                for entry in family:
                    bucket = prop_buckets.setdefault((name, entry.value), [])
                    if not bucket or bucket[-1] is not obj:
                        bucket.append(obj)

        core.node_label_buckets = {
            label: tuple(members) for label, members in node_buckets.items()
        }
        core.edge_label_buckets = {
            label: tuple(members) for label, members in edge_buckets.items()
        }
        core.prop_value_buckets = {
            key: tuple(members) for key, members in prop_buckets.items()
        }
        return core


class GraphIndex:
    """Compiled, immutable-by-convention indexes over one :class:`IntervalTPG`.

    Build via :func:`graph_index_for` so the compilation cost is paid
    once per graph; the memoized condition tables then accumulate across
    every query and engine that shares the instance.  The flat compiled
    tables live in a :class:`CompiledCore` — either built eagerly from
    the graph here, or passed in pre-attached from a persistent artifact
    (:func:`repro.store.attach`); on top of the core the index keeps the
    mutable overlay state delta maintenance writes to, plus the memoized
    condition / hop tables.
    """

    def __init__(self, graph: IntervalTPG, core: CompiledCore | None = None) -> None:
        self._graph = graph
        if core is None:
            core = CompiledCore.from_graph(graph)
        self._core = core
        self._domain = core.domain
        self._full = IntervalSet((core.domain,))
        self._empty = IntervalSet.empty()

        # The core's tables become the index's working set.  For the
        # in-memory build the core is exclusively owned, so writing its
        # plain dicts in place *is* the overlay; attached cores hand out
        # lazy maps whose writes land in a per-map overlay instead of
        # the mmapped artifact.
        self._nodes: frozenset[ObjectId] = core.nodes
        self._edges: frozenset[ObjectId] = core.edges
        self.objects: tuple[ObjectId, ...] = core.objects
        self.object_id: dict[ObjectId, int] = core.object_id
        self.labels = core.labels
        self.existence = core.existence
        self.out_adjacency = core.out_adjacency
        self.in_adjacency = core.in_adjacency
        self.edge_source = core.edge_source
        self.edge_target = core.edge_target
        self.node_label_buckets = core.node_label_buckets
        self.edge_label_buckets = core.edge_label_buckets
        self.prop_value_buckets = core.prop_value_buckets
        self._properties = core.properties

        self._times_cache: dict[tuple[Test, ObjectId], IntervalSet] = {}
        self._table_cache: dict[Test, dict[ObjectId, IntervalSet]] = {}
        self._static_cache: dict[Test, bool] = {}
        self._hop_cache: dict[
            tuple, dict[ObjectId, tuple[tuple[ObjectId, IntervalSet], ...]]
        ] = {}
        #: Maintenance counter: +1 per :meth:`apply_delta` (server stats).
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """How many delta batches this index has been maintained through."""
        return self._epoch

    @property
    def core(self) -> CompiledCore:
        """The compiled core the index was built from (or attached to)."""
        return self._core

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> IntervalTPG:
        return self._graph

    @property
    def domain(self) -> Interval:
        return self._domain

    def is_node(self, obj: ObjectId) -> bool:
        return obj in self._nodes

    def is_edge(self, obj: ObjectId) -> bool:
        return obj in self._edges

    def nodes(self) -> frozenset[ObjectId]:
        return self._nodes

    def edges(self) -> frozenset[ObjectId]:
        return self._edges

    # ------------------------------------------------------------------ #
    # Condition evaluation
    # ------------------------------------------------------------------ #
    def is_static(self, condition: Test) -> bool:
        """True when the condition contains no path condition ``(?path)``."""
        cached = self._static_cache.get(condition)
        if cached is None:
            cached = _is_static(condition)
            self._static_cache[condition] = cached
        return cached

    def times_for(
        self,
        obj: ObjectId,
        condition: Test,
        path_test_resolver: Optional[PathTestResolver] = None,
    ) -> IntervalSet:
        """Coalesced times at which ``(obj, t)`` satisfies ``condition``.

        Results for static conditions are memoized per ``(condition,
        object)``; conditions containing ``(?path)`` require a resolver
        and are never cached here (the resolver caches at its own level).
        """
        if self.is_static(condition):
            key = (condition, obj)
            cached = self._times_cache.get(key)
            if cached is None:
                cached = self._times(obj, condition, None)
                self._times_cache[key] = cached
            return cached
        return self._times(obj, condition, path_test_resolver)

    def condition_table(
        self,
        condition: Test,
        path_test_resolver: Optional[PathTestResolver] = None,
    ) -> dict[ObjectId, IntervalSet]:
        """``object → satisfaction times`` for every object with nonempty times.

        Candidates are narrowed through the label / property buckets
        before any per-object work, and the finished table is memoized
        (static conditions only).  Treat the returned mapping as
        read-only: it is shared between callers.
        """
        static = self.is_static(condition)
        if static:
            cached = self._table_cache.get(condition)
            if cached is not None:
                return cached
        candidates = self._candidates(condition)
        if candidates is None:
            pool: Iterable[ObjectId] = self.objects
        else:
            # Filter the deterministic object order through the candidate
            # set rather than iterating the (hash-ordered) set itself, so
            # frontier seeding stays reproducible across processes.
            pool = (obj for obj in self.objects if obj in candidates)
        table: dict[ObjectId, IntervalSet] = {}
        for obj in pool:
            times = self.times_for(obj, condition, path_test_resolver)
            if not times.is_empty():
                table[obj] = times
        if static:
            self._table_cache[condition] = table
        return table

    def _times(
        self,
        obj: ObjectId,
        condition: Test,
        resolver: Optional[PathTestResolver],
    ) -> IntervalSet:
        if isinstance(condition, AndTest):
            result = self._full
            for part in condition.parts:
                result = result.intersect(self._times(obj, part, resolver))
                if result.is_empty():
                    return self._empty
            return result
        if isinstance(condition, LabelTest):
            return self._full if self.labels.get(obj) == condition.label else self._empty
        if isinstance(condition, PropEq):
            family = self._properties[obj].get(condition.prop)
            if family is None:
                return self._empty
            return family.when_equals(condition.value)
        if isinstance(condition, ExistsTest):
            return self.existence[obj]
        if isinstance(condition, NodeTest):
            return self._full if obj in self._nodes else self._empty
        if isinstance(condition, EdgeTest):
            return self._full if obj in self._edges else self._empty
        if isinstance(condition, TimeLt):
            if condition.bound <= self._domain.start:
                return self._empty
            return IntervalSet(
                (Interval(self._domain.start, min(self._domain.end, condition.bound - 1)),)
            )
        if isinstance(condition, TrueTest):
            return self._full
        if isinstance(condition, OrTest):
            result = self._empty
            for part in condition.parts:
                result = result.union(self._times(obj, part, resolver))
            return result
        if isinstance(condition, NotTest):
            return self._times(obj, condition.inner, resolver).complement(self._domain)
        if isinstance(condition, PathTest):
            if resolver is None:
                raise UnsupportedFragmentError(
                    "path conditions (?path) require an engine-supplied resolver"
                )
            return resolver(condition).get(obj, self._empty)
        raise TypeError(f"unknown test {condition!r}")

    # ------------------------------------------------------------------ #
    # Fused hops (set-at-a-time structural traversal)
    # ------------------------------------------------------------------ #
    def hop_entries(
        self,
        obj: ObjectId,
        forward_in: bool,
        mid_conditions: tuple[Test, ...],
        forward_out: bool,
        target_conditions: tuple[Test, ...],
    ) -> tuple[tuple[ObjectId, IntervalSet], ...]:
        """Per-source entries of a fused two-struct hop, memoized per graph.

        Each entry pairs a reachable target object with the coalesced
        times contributed by every intermediate object on the way (all
        parallel edges between the same endpoints collapse into one
        family — the diagonal form of
        :class:`~repro.perf.interval_relation.IntervalRelation` with
        offset 0).  The per-source results are computed lazily — only
        for objects an actual frontier visits — because precomputing
        edge-sourced hops for the whole graph would be quadratic in the
        adjacency degree.
        """
        key = (forward_in, mid_conditions, forward_out, target_conditions)
        per_source = self._hop_cache.get(key)
        if per_source is None:
            per_source = self._hop_cache[key] = {}
        entries = per_source.get(obj)
        if entries is None:
            entries = per_source[obj] = self._compute_hop(
                obj, forward_in, mid_conditions, forward_out, target_conditions
            )
        return entries

    def _step_objects(self, obj: ObjectId, forward: bool) -> tuple[ObjectId, ...]:
        """One structural move: node → adjacent edges, edge → endpoint."""
        if obj in self._nodes:
            adjacency = self.out_adjacency if forward else self.in_adjacency
            return adjacency[obj]
        endpoint = self.edge_target if forward else self.edge_source
        return (endpoint[obj],)

    def _compute_hop(
        self,
        obj: ObjectId,
        forward_in: bool,
        mid_conditions: tuple[Test, ...],
        forward_out: bool,
        target_conditions: tuple[Test, ...],
    ) -> tuple[tuple[ObjectId, IntervalSet], ...]:
        mid_tables = [self.condition_table(c) for c in mid_conditions]
        target_tables = [self.condition_table(c) for c in target_conditions]
        merged: dict[ObjectId, IntervalSetAccumulator] = {}
        for mid in self._step_objects(obj, forward_in):
            times = self._full
            for table in mid_tables:
                satisfied = table.get(mid)
                if satisfied is None:
                    times = self._empty
                    break
                times = times.intersect(satisfied)
                if times.is_empty():
                    break
            if times.is_empty():
                continue
            for target in self._step_objects(mid, forward_out):
                target_times = times
                for table in target_tables:
                    satisfied = table.get(target)
                    if satisfied is None:
                        target_times = self._empty
                        break
                    target_times = target_times.intersect(satisfied)
                    if target_times.is_empty():
                        break
                if target_times.is_empty():
                    continue
                accumulator = merged.get(target)
                if accumulator is None:
                    accumulator = merged[target] = IntervalSetAccumulator()
                accumulator.add(target_times)
        return tuple(
            (target, accumulator.build()) for target, accumulator in merged.items()
        )

    # ------------------------------------------------------------------ #
    # Incremental maintenance (streaming deltas)
    # ------------------------------------------------------------------ #
    def apply_delta(self, effects) -> None:
        """Maintain the compiled index after an applied delta batch.

        ``effects`` is the :class:`~repro.streaming.delta.DeltaEffects`
        record of a batch already applied to :attr:`graph` (typed
        loosely to keep :mod:`repro.perf` below :mod:`repro.streaming`
        in the layering).  The compiled structures are updated in place:

        * new objects are appended — their dense ``object_id`` slots
          extend the table, so every existing frontier signature stays
          valid;
        * touched objects get their existence/property families and
          label/property buckets refreshed from the graph; new edges are
          appended to their endpoints' adjacency tuples;
        * memoized *per-object* results (times cache, condition-table
          entries) are recomputed for exactly the dirty objects, and hop
          tables drop the sources whose 2-hop neighbourhood reaches the
          dirty set — a hop reads two structural moves, so any farther
          source is provably unaffected.

        Advancing the horizon invalidates every memoized family instead:
        condition satisfaction (``¬φ``, label tests, ``time < c``) is
        clamped to the domain, so no per-object surgery is sound there.

        Soundness of the repair radius: a condition table entry is a
        function of one object's own families (object-local — repairing
        the dirty objects suffices), and a hop table entry reads objects
        at most two structural moves from its source *through the
        source's and mids' adjacency*; any adjacency change is itself a
        new edge, which puts the edge in the dirty set and every
        affected hop source inside ``structural_closure(dirty, 2)``.
        ``tests/test_streaming.py`` pins this with a randomized
        incremental-vs-cold-rebuild differential, and the stale caches
        that *do* outlive an in-place mutation — the pickled parallel
        plan payload and the worker-side graphs keyed by its token — are
        invalidated at delta-commit time by
        :func:`repro.parallel.plan.invalidate_plans`.
        """
        dirty = set(effects.dirty)
        self._epoch += 1
        if effects.horizon_advanced:
            self._domain = self._graph.domain
            self._full = IntervalSet((self._domain,))
            self._times_cache.clear()
            self._table_cache.clear()
            self._hop_cache.clear()

        graph = self._graph
        appended: list[ObjectId] = []
        for node in effects.new_nodes:
            self._nodes = self._nodes | {node}
            self.labels[node] = graph.label(node)
            self.existence[node] = graph.existence(node)
            self.out_adjacency[node] = ()
            self.in_adjacency[node] = ()
            self._properties[node] = graph.properties(node)
            bucket = self.node_label_buckets.get(graph.label(node), ())
            self.node_label_buckets[graph.label(node)] = bucket + (node,)
            appended.append(node)
        for edge in effects.new_edges:
            self._edges = self._edges | {edge}
            self.labels[edge] = graph.label(edge)
            self.existence[edge] = graph.existence(edge)
            src, tgt = graph.endpoints(edge)
            self.edge_source[edge] = src
            self.edge_target[edge] = tgt
            self.out_adjacency[src] = self.out_adjacency[src] + (edge,)
            self.in_adjacency[tgt] = self.in_adjacency[tgt] + (edge,)
            self._properties[edge] = graph.properties(edge)
            bucket = self.edge_label_buckets.get(graph.label(edge), ())
            self.edge_label_buckets[graph.label(edge)] = bucket + (edge,)
            appended.append(edge)
        if appended:
            position = len(self.objects)
            self.objects = self.objects + tuple(appended)
            for obj in appended:
                self.object_id[obj] = position
                position += 1

        for obj in effects.touched:
            self.existence[obj] = graph.existence(obj)
            self._properties[obj] = graph.properties(obj)
        for obj in sorted(dirty, key=lambda o: self.object_id[o]):
            for name, family in self._properties[obj].items():
                for entry in family:
                    key = (name, entry.value)
                    bucket = self.prop_value_buckets.get(key, ())
                    if obj not in bucket:
                        self.prop_value_buckets[key] = bucket + (obj,)

        if not effects.horizon_advanced and dirty:
            stale = [key for key in self._times_cache if key[1] in dirty]
            for key in stale:
                del self._times_cache[key]
            # Condition tables are shared with callers by reference, so
            # they are repaired in place: recompute exactly the dirty
            # objects' satisfaction times.
            for condition, table in self._table_cache.items():
                for obj in dirty:
                    times = self.times_for(obj, condition)
                    if times.is_empty():
                        table.pop(obj, None)
                    else:
                        table[obj] = times
            if self._hop_cache:
                stale_sources = self.structural_closure(dirty, 2)
                for per_source in self._hop_cache.values():
                    for obj in stale_sources:
                        per_source.pop(obj, None)

    def snapshot_core(self) -> CompiledCore:
        """A plain-dict snapshot of the compiled tables *as maintained now*.

        The store writer serializes this rather than :attr:`core` because
        delta maintenance mutates the index's working maps, not the core
        it was built from — a snapshot therefore reflects every applied
        batch.  Per-object entries are pulled through the live maps, so
        an attached (lazily decoded) index snapshots correctly too.
        """
        core = CompiledCore()
        core.domain = self._domain
        core.nodes = self._nodes
        core.edges = self._edges
        core.objects = self.objects
        core.object_id = dict(self.object_id)
        core.labels = {obj: self.labels[obj] for obj in self.objects}
        core.existence = {obj: self.existence[obj] for obj in self.objects}
        core.out_adjacency = {
            obj: self.out_adjacency[obj] for obj in self.objects if obj in self._nodes
        }
        core.in_adjacency = {
            obj: self.in_adjacency[obj] for obj in self.objects if obj in self._nodes
        }
        core.edge_source = {
            obj: self.edge_source[obj] for obj in self.objects if obj in self._edges
        }
        core.edge_target = {
            obj: self.edge_target[obj] for obj in self.objects if obj in self._edges
        }
        core.properties = {obj: dict(self._properties[obj]) for obj in self.objects}
        # Copy via .items(): plain dict(m) on a dict subclass reads the
        # C-level storage directly, which would skip an attached core's
        # lazy section fill.
        core.node_label_buckets = {k: v for k, v in self.node_label_buckets.items()}
        core.edge_label_buckets = {k: v for k, v in self.edge_label_buckets.items()}
        core.prop_value_buckets = {k: v for k, v in self.prop_value_buckets.items()}
        return core

    def structural_closure(
        self, objects: Iterable[ObjectId], radius: int
    ) -> set[ObjectId]:
        """All objects within ``radius`` structural moves of ``objects``.

        A structural move relates a node with an incident edge (in
        either direction — ``F`` and ``B`` are both covered by the
        undirected incidence relation).  This is the locality bound
        behind dirty-set invalidation: a chain evaluation seeded at
        ``s`` only ever reads objects inside ``s``'s closure ball, so a
        change at ``x`` can only affect seeds whose ball reaches ``x``.
        """
        closure = {obj for obj in objects if obj in self.labels}
        frontier = set(closure)
        for _ in range(radius):
            if not frontier:
                break
            reached: set[ObjectId] = set()
            for obj in frontier:
                if obj in self._nodes:
                    reached.update(self.out_adjacency[obj])
                    reached.update(self.in_adjacency[obj])
                else:
                    reached.add(self.edge_source[obj])
                    reached.add(self.edge_target[obj])
            frontier = reached - closure
            closure |= frontier
        return closure

    # ------------------------------------------------------------------ #
    # Seed cost model (parallel chunking)
    # ------------------------------------------------------------------ #
    def seed_weight(self, obj: ObjectId) -> int:
        """Estimated chain-execution cost of a frontier seeded at ``obj``.

        The first structural step fans a node out to its adjacent edges,
        so a seed's work is roughly proportional to its out-degree;
        edges step to a single endpoint.  The weighted partitioner uses
        this to stop one hub-heavy chunk from straggling behind the
        rest — the imbalance a count-based split cannot see.
        """
        edges = self.out_adjacency.get(obj)
        if edges is None:
            return 2
        return 1 + len(edges)

    def _candidates(self, condition: Test) -> Optional[frozenset[ObjectId]]:
        """Objects that can possibly satisfy the condition, or ``None`` for all.

        Sound over-approximation only — the per-object times are always
        verified afterwards — so unrestrictive tests simply return
        ``None``.
        """
        if isinstance(condition, LabelTest):
            return frozenset(
                self.node_label_buckets.get(condition.label, ())
                + self.edge_label_buckets.get(condition.label, ())
            )
        if isinstance(condition, PropEq):
            return frozenset(
                self.prop_value_buckets.get((condition.prop, condition.value), ())
            )
        if isinstance(condition, NodeTest):
            return self._nodes
        if isinstance(condition, EdgeTest):
            return self._edges
        if isinstance(condition, AndTest):
            narrowed: Optional[frozenset[ObjectId]] = None
            for part in condition.parts:
                part_candidates = self._candidates(part)
                if part_candidates is None:
                    continue
                narrowed = (
                    part_candidates
                    if narrowed is None
                    else narrowed & part_candidates
                )
            return narrowed
        if isinstance(condition, OrTest):
            union: frozenset[ObjectId] = frozenset()
            for part in condition.parts:
                part_candidates = self._candidates(part)
                if part_candidates is None:
                    return None
                union |= part_candidates
            return union
        return None


def _is_static(condition: Test) -> bool:
    if isinstance(condition, PathTest):
        return False
    if isinstance(condition, (AndTest, OrTest)):
        return all(_is_static(part) for part in condition.parts)
    if isinstance(condition, NotTest):
        return _is_static(condition.inner)
    return True


# --------------------------------------------------------------------- #
# Per-graph cache
# --------------------------------------------------------------------- #
_CACHE_ATTR = "_repro_graph_index"


def graph_index_for(graph: TemporalGraph) -> GraphIndex:
    """The shared :class:`GraphIndex` of ``graph``, compiling it on first use.

    Point-based graphs are converted to their interval form once.  The
    index is stored on the graph object itself, so its lifetime is
    exactly the graph's lifetime — no global registry to leak through.
    """
    cached = getattr(graph, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    itpg = tpg_to_itpg(graph) if isinstance(graph, TemporalPropertyGraph) else graph
    index = GraphIndex(itpg)
    setattr(graph, _CACHE_ATTR, index)
    return index


def install_index(graph: TemporalGraph, index: GraphIndex) -> None:
    """Pre-bind a compiled ``index`` as ``graph``'s shared index.

    The store attach path builds the index from an artifact core rather
    than from the graph; installing it here makes every subsequent
    :func:`graph_index_for` call return the attached index instead of
    recompiling.
    """
    setattr(graph, _CACHE_ATTR, index)


# The former worker-side ``_WORKER_INDEXES`` registry lived here, keyed
# by execution-plan token next to the graph/engine caches in
# :mod:`repro.parallel.pool` — three caches with two eviction paths.
# All worker-side per-token state is now consolidated in
# :mod:`repro.parallel.registry`; the index itself rides on the cached
# graph through :func:`graph_index_for`'s on-graph attribute, so
# evicting the registry entry releases the index with it.
