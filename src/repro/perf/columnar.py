"""Columnar (vectorized) evaluation kernel for fused step chains.

The interpreted engine in :mod:`repro.dataflow.executor` walks the
frontier row by row in Python.  This module compiles the same fused
chain into a sequence of *columnar ops* executed as NumPy sweeps over
flat arrays:

* the frontier is a struct-of-arrays: ``cur`` (dense object ids, one
  per row), one int64 column per bound variable, and the per-row
  validity families as three parallel int64 arrays ``(owner, start,
  end)`` — ``owner`` is the row index, sorted ascending, and each
  owner's intervals form a coalesced family (sorted, pairwise disjoint,
  non-adjacent);
* the graph image is a :class:`ColumnarContext`: CSR adjacency and
  existence over the :class:`~repro.perf.graph_index.GraphIndex` dense
  ids, per-condition CSR tables decoded from the index's memoized
  condition tables, and — when the graph is attached from a
  ``repro-index/1`` store at epoch 0 — existence/adjacency decoded
  straight out of the artifact's struct-packed sections;
* interval algebra happens on a *global axis*: an interval ``[s, e]``
  of row ``r`` maps to ``r * stride + (s - domain.start)`` with
  ``stride = domain span + 2``.  The two-point guard gap means
  coalescing (which merges intervals with gap <= 1) can never fuse
  intervals across rows, and the ±1 shifts of contiguous temporal
  navigation stay inside a row's band.  Intersection of two coalesced
  global families is a ``searchsorted`` expansion; coalescing is one
  argsort plus ``maximum.reduceat``.

The kernel covers chains of Test / Struct / fused-Hop / Bind /
temporal-free Alt steps, optionally ending in one final TemporalStep,
producing interval-native ``families`` output (every variable bound in
temporal group 0) — the Q1–Q5 / Q9–Q12 shapes.  Everything else
(mid-chain temporal navigation, temporal alternatives, point-mode
output) reports a fallback reason and runs interpreted; the interpreted
path stays authoritative and every columnar answer is differential-
fuzzed against it.

NumPy is an optional accelerator, not a dependency: when it is missing
:func:`available` returns ``False`` and the engine falls back to the
interpreted kernel with that reason recorded in ``explain()``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Optional, Sequence

from repro.dataflow.frontier import Row
from repro.dataflow.steps import (
    AltStep,
    BindStep,
    ChainStep,
    HopStep,
    StructStep,
    TemporalStep,
    TestStep,
    chain_has_temporal_step,
)
from repro.errors import EvaluationError
from repro.lang.ast import Test
from repro.resilience import failpoints
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

try:
    import numpy as np
except ImportError:
    np = None

ObjectId = Hashable


def available() -> bool:
    """Whether the kernel can run in this interpreter (NumPy importable)."""
    return np is not None


# --------------------------------------------------------------------- #
# Plan: chain -> columnar ops
# --------------------------------------------------------------------- #
class ColumnarPlan:
    """A full-query columnar plan: seed spec + compiled op sequence."""

    __slots__ = ("seed_condition", "ops")

    def __init__(
        self, seed_condition: Optional[Test], ops: tuple
    ) -> None:
        self.seed_condition = seed_condition
        self.ops = ops


def compile_ops(
    chain: Sequence[ChainStep], *, inside_alt: bool = False
) -> tuple[Optional[tuple], Optional[str]]:
    """Compile a (sub)chain into columnar ops: ``(ops, None)`` or
    ``(None, reason)`` when a step shape is not covered.

    Fused hops decompose into struct/test passes (signature-merged after
    each struct), which is relation-equal to the interpreted hop tables.
    A TemporalStep is supported only as the final step of the outer
    chain: the kernel fuses it with Step-3 materialization (the output
    family of a two-group row whose bindings all live in group 0 is
    ``T ∩ sources(targets(T) ∩ fused-conditions)``).
    """
    ops: list = []
    last = len(chain) - 1
    for position, step in enumerate(chain):
        if isinstance(step, TestStep):
            ops.append(("test", step.condition))
        elif isinstance(step, StructStep):
            ops.append(("struct", step.forward))
        elif isinstance(step, HopStep):
            ops.append(("struct", step.forward_in))
            for condition in step.mid_conditions:
                ops.append(("test", condition))
            ops.append(("struct", step.forward_out))
            for condition in step.target_conditions:
                ops.append(("test", condition))
        elif isinstance(step, BindStep):
            if inside_alt:
                return None, "variable binding inside alternation"
            ops.append(("bind", step.variable))
        elif isinstance(step, TemporalStep):
            if inside_alt:
                return None, "temporal navigation inside alternation"
            if position != last:
                return None, "temporal navigation before the end of the chain"
            ops.append(("temporal", step))
        elif isinstance(step, AltStep):
            branches = []
            for alternative in step.alternatives:
                if chain_has_temporal_step(alternative):
                    return None, "temporal navigation inside alternation"
                sub, reason = compile_ops(alternative, inside_alt=True)
                if sub is None:
                    return None, reason
                branches.append(sub)
            ops.append(("alt", tuple(branches)))
        else:
            return None, f"unsupported step {type(step).__name__}"
    return tuple(ops), None


@lru_cache(maxsize=256)
def ops_for(
    chain: tuple[ChainStep, ...]
) -> tuple[Optional[tuple], Optional[str]]:
    """Memoized :func:`compile_ops` for row-seeded runs (no leading-test
    absorption: the caller's seed rows already carry those times)."""
    return compile_ops(chain)


@lru_cache(maxsize=256)
def plan_query(
    chain: tuple[ChainStep, ...]
) -> tuple[Optional[ColumnarPlan], Optional[str]]:
    """Plan a full compiled chain, absorbing a leading TestStep as the
    seed condition exactly like ``DataflowEngine._initial_frontier``
    does against the index's memoized condition table."""
    if chain and isinstance(chain[0], TestStep):
        seed_condition: Optional[Test] = chain[0].condition
        rest: Sequence[ChainStep] = chain[1:]
    else:
        seed_condition = None
        rest = chain
    ops, reason = compile_ops(rest)
    if ops is None:
        return None, reason
    return ColumnarPlan(seed_condition, ops), None


# --------------------------------------------------------------------- #
# Context: one GraphIndex epoch as flat arrays
# --------------------------------------------------------------------- #
class ColumnarContext:
    """Dense-array image of one :class:`GraphIndex` maintenance epoch.

    Built once per ``(engine, index.epoch)`` and shared by every query:
    adjacency and existence as int64 CSR over dense object ids, edge
    endpoints as flat successor arrays, and per-condition CSR tables
    materialized on first use from the index's memoized condition
    tables.  Delta maintenance bumps the index epoch, which invalidates
    the cached context wholesale — the arrays are immutable.
    """

    def __init__(self, index) -> None:
        if np is None:
            raise RuntimeError("the columnar kernel requires numpy")
        self._index = index
        self.epoch = index.epoch
        domain = index.domain
        self.domain_start = int(domain.start)
        self.domain_end = int(domain.end)
        #: Global-axis row stride: domain span plus a 2-wide guard gap so
        #: coalescing (gap <= 1 merges) and ±1 contiguous-navigation
        #: shifts can never cross row bands.
        self.stride = self.domain_end - self.domain_start + 2

        objects = index.objects
        self.objects = objects
        self.object_id = index.object_id
        n = len(objects)
        self.num_objects = n

        nodes = index.nodes()
        is_node = np.zeros(n, dtype=bool)
        for position, obj in enumerate(objects):
            if obj in nodes:
                is_node[position] = True
        self.is_node = is_node

        decoded = self._decode_store_sections(index)
        if decoded is not None:
            (
                self.ex_indptr,
                self.ex_start,
                self.ex_end,
                self.out_indptr,
                self.out_ids,
                self.in_indptr,
                self.in_ids,
            ) = decoded
        else:
            self._build_existence(index, n, objects)
            self._build_adjacency(index, n, objects, is_node)
        self._build_endpoints(index, n, objects, is_node)

        self._conditions: dict[Test, tuple] = {}

    # -- graph tables ---------------------------------------------------- #
    @staticmethod
    def _decode_store_sections(index):
        """Zero-copy-decode existence/adjacency from an attached store.

        Only valid for a pristine single-artifact attachment (epoch 0,
        identity record layout): after delta maintenance the lazy-map
        overlays shadow the on-disk records, so the generic dict walk
        below is the source of truth instead.
        """
        if index.epoch != 0:
            return None
        core = index.core
        sections = getattr(core, "columnar_sections", None)
        if sections is None:
            return None
        views = sections()
        if views is None:
            return None
        exist_idx, exist_dat, adj_idx, adj_dat = views
        # Copies, deliberately: frombuffer views would pin the store's
        # mmap open (attachment.close() raises on exported buffers).
        ex_offsets = np.frombuffer(exist_idx, dtype="<u8").astype(np.int64)
        ex_pairs = np.frombuffer(exist_dat, dtype="<i8").astype(np.int64)
        ex_indptr = ex_offsets // 16
        ex_start = ex_pairs[0::2].copy()
        ex_end = ex_pairs[1::2].copy()

        offsets = np.frombuffer(adj_idx, dtype="<u8").astype(np.int64)
        words = np.frombuffer(adj_dat, dtype="<u4").astype(np.int64)
        rec_start = offsets[:-1] // 4
        rec_len = (offsets[1:] - offsets[:-1]) // 4
        filled = rec_len > 0
        out_count = np.zeros(rec_len.size, dtype=np.int64)
        out_count[filled] = words[rec_start[filled]]
        in_count = np.where(filled, rec_len - 1 - out_count, 0)
        out_indptr = np.concatenate(([0], np.cumsum(out_count)))
        in_indptr = np.concatenate(([0], np.cumsum(in_count)))
        out_ids = words[_ranges(rec_start + 1, out_count)]
        in_ids = words[_ranges(rec_start + 1 + out_count, in_count)]
        return ex_indptr, ex_start, ex_end, out_indptr, out_ids, in_indptr, in_ids

    def _build_existence(self, index, n: int, objects) -> None:
        counts = np.zeros(n + 1, dtype=np.int64)
        starts: list[int] = []
        ends: list[int] = []
        existence = index.existence
        for position, obj in enumerate(objects):
            intervals = existence[obj].intervals
            counts[position + 1] = len(intervals)
            for interval in intervals:
                starts.append(interval.start)
                ends.append(interval.end)
        self.ex_indptr = np.cumsum(counts)
        self.ex_start = np.asarray(starts, dtype=np.int64)
        self.ex_end = np.asarray(ends, dtype=np.int64)

    def _build_adjacency(self, index, n: int, objects, is_node) -> None:
        object_id = self.object_id
        out_counts = np.zeros(n + 1, dtype=np.int64)
        in_counts = np.zeros(n + 1, dtype=np.int64)
        out_ids: list[int] = []
        in_ids: list[int] = []
        out_adjacency = index.out_adjacency
        in_adjacency = index.in_adjacency
        for position, obj in enumerate(objects):
            if not is_node[position]:
                continue
            out_edges = out_adjacency[obj]
            in_edges = in_adjacency[obj]
            out_counts[position + 1] = len(out_edges)
            in_counts[position + 1] = len(in_edges)
            for edge in out_edges:
                out_ids.append(object_id[edge])
            for edge in in_edges:
                in_ids.append(object_id[edge])
        self.out_indptr = np.cumsum(out_counts)
        self.in_indptr = np.cumsum(in_counts)
        self.out_ids = np.asarray(out_ids, dtype=np.int64)
        self.in_ids = np.asarray(in_ids, dtype=np.int64)

    def _build_endpoints(self, index, n: int, objects, is_node) -> None:
        object_id = self.object_id
        succ_fwd = np.full(n, -1, dtype=np.int64)
        succ_bwd = np.full(n, -1, dtype=np.int64)
        edge_source = index.edge_source
        edge_target = index.edge_target
        for position, obj in enumerate(objects):
            if is_node[position]:
                continue
            succ_fwd[position] = object_id[edge_target[obj]]
            succ_bwd[position] = object_id[edge_source[obj]]
        self.succ_fwd = succ_fwd
        self.succ_bwd = succ_bwd

    # -- condition tables ------------------------------------------------- #
    def condition_arrays(self, condition: Test) -> tuple:
        """``(indptr, starts, ends)`` CSR over dense ids for one condition.

        Decoded once per condition from the index's memoized table
        (objects absent from the table get an empty row, mirroring the
        interpreted ``table.get(...) is None`` kill).
        """
        cached = self._conditions.get(condition)
        if cached is not None:
            return cached
        table = self._index.condition_table(condition)
        object_id = self.object_id
        counts = np.zeros(self.num_objects + 1, dtype=np.int64)
        for obj, family in table.items():
            counts[object_id[obj] + 1] = len(family.intervals)
        indptr = np.cumsum(counts)
        starts = np.empty(int(indptr[-1]), dtype=np.int64)
        ends = np.empty_like(starts)
        for obj, family in table.items():
            at = int(indptr[object_id[obj]])
            for offset, interval in enumerate(family.intervals):
                starts[at + offset] = interval.start
                ends[at + offset] = interval.end
        cached = (indptr, starts, ends)
        self._conditions[condition] = cached
        return cached

    def seed_count(self, plan: ColumnarPlan) -> int:
        """How many seed rows the plan starts from (for pool engagement)."""
        if plan.seed_condition is None:
            return self.num_objects
        # The memoized table stores only objects with nonempty times, so
        # its length is exactly the interpreted seed-row count.
        return len(self._index.condition_table(plan.seed_condition))


# --------------------------------------------------------------------- #
# Array primitives
# --------------------------------------------------------------------- #
def _ranges(starts, counts):
    """Concatenation of ``arange(starts[i], starts[i] + counts[i])``."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    first = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    return np.arange(total, dtype=np.int64) + first


def _pairs(a_gs, a_ge, b_gs, b_ge):
    """Index pairs ``(i, j)`` with ``A_i`` overlapping ``B_j``.

    Both sides are global-axis coalesced families sorted by start; the
    expansion is two ``searchsorted`` passes plus a ragged gather.
    """
    if a_gs.size == 0 or b_gs.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    lo = np.searchsorted(b_ge, a_gs, side="left")
    hi = np.searchsorted(b_gs, a_ge, side="right")
    counts = np.maximum(hi - lo, 0)
    a_idx = np.repeat(np.arange(a_gs.size, dtype=np.int64), counts)
    b_idx = _ranges(lo, counts)
    return a_idx, b_idx


def _coalesce(stride, domain_start, owner, start, end):
    """Sort + union-merge ``(owner, start, end)`` into canonical form.

    Returns owner-sorted arrays where each owner's intervals are a
    coalesced family.  The guard gap in ``stride`` guarantees the merge
    sweep never unions intervals of different owners.
    """
    if owner.size <= 1:
        return owner, start, end
    gs = owner * stride + (start - domain_start)
    ge = owner * stride + (end - domain_start)
    order = np.argsort(gs, kind="stable")
    gs = gs[order]
    ge = ge[order]
    run_end = np.maximum.accumulate(ge)
    fresh = np.empty(gs.size, dtype=bool)
    fresh[0] = True
    fresh[1:] = gs[1:] > run_end[:-1] + 1
    heads = np.flatnonzero(fresh)
    out_gs = gs[heads]
    out_ge = np.maximum.reduceat(ge, heads)
    out_owner = out_gs // stride
    base = out_owner * stride - domain_start
    return out_owner, out_gs - base, out_ge - base


def _intersect_global(a_gs, a_ge, b_gs, b_ge):
    """Pairwise intersection of two sorted coalesced global families.

    Returns ``(gs, ge, a_idx)``: the (still sorted, still coalesced)
    intersection plus, per output interval, the index of the A-side
    interval it came from (to recover owners without decoding).
    """
    a_idx, b_idx = _pairs(a_gs, a_ge, b_gs, b_ge)
    if a_idx.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    return (
        np.maximum(a_gs[a_idx], b_gs[b_idx]),
        np.minimum(a_ge[a_idx], b_ge[b_idx]),
        a_idx,
    )


def _group_rows(keys: list, count: int):
    """Group rows by the tuple of key columns, first-occurrence ordered.

    Returns ``(group_of, reps)``: per-row group ids and, per group, the
    index of its first member — the same representative the interpreted
    coalescing frontier keeps when signature-equal rows merge.
    """
    if not keys:
        return (
            np.zeros(count, dtype=np.int64),
            np.zeros(1 if count else 0, dtype=np.int64),
        )
    order = np.lexsort(tuple(keys))
    fresh = np.zeros(count, dtype=bool)
    fresh[0] = True
    for key in keys:
        sorted_key = key[order]
        fresh[1:] |= sorted_key[1:] != sorted_key[:-1]
    group_sorted = np.cumsum(fresh) - 1
    group_of = np.empty(count, dtype=np.int64)
    group_of[order] = group_sorted
    # lexsort is stable, so the first entry of each sorted group is that
    # group's earliest original row; reorder group ids by it.
    reps_sorted = order[fresh]
    perm = np.argsort(reps_sorted, kind="stable")
    rank = np.empty(perm.size, dtype=np.int64)
    rank[perm] = np.arange(perm.size, dtype=np.int64)
    return rank[group_of], reps_sorted[perm]


# --------------------------------------------------------------------- #
# Frontier state
# --------------------------------------------------------------------- #
class _State:
    """Struct-of-arrays frontier.

    Invariants: ``owner`` ascending; per owner the ``(start, end)``
    intervals form a coalesced family; every row owns >= 1 interval
    (rows that run dry are compacted away, like interpreted rows whose
    times empty out).
    """

    __slots__ = ("cur", "names", "cols", "owner", "start", "end")

    def __init__(self, cur, names, cols, owner, start, end) -> None:
        self.cur = cur
        self.names = names
        self.cols = cols
        self.owner = owner
        self.start = start
        self.end = end

    @property
    def rows(self) -> int:
        return int(self.cur.size)


def _empty_state(names: tuple[str, ...]) -> _State:
    empty = np.empty(0, dtype=np.int64)
    return _State(empty, names, [empty] * len(names), empty, empty, empty)


def _compact(state: _State, owner, start, end) -> _State:
    """Re-pack after an op dropped intervals: owners renumber densely."""
    rows = state.rows
    alive = np.zeros(rows, dtype=bool)
    alive[owner] = True
    if alive.all():
        return _State(state.cur, state.names, state.cols, owner, start, end)
    remap = np.cumsum(alive) - 1
    return _State(
        state.cur[alive],
        state.names,
        [column[alive] for column in state.cols],
        remap[owner],
        start,
        end,
    )


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #
class _Kernel:
    """One columnar evaluation: ops over a context, deadline-aware."""

    def __init__(self, ctx: ColumnarContext, deadline=None) -> None:
        self.ctx = ctx
        self.deadline = deadline
        self.rows_merged = 0

    # -- helpers --------------------------------------------------------- #
    def _globals(self, owner, start, end):
        ctx = self.ctx
        gs = owner * ctx.stride + (start - ctx.domain_start)
        return gs, gs + (end - start)

    def _gather_condition(self, condition, cur):
        """Per-row condition intervals on the global (row-keyed) axis."""
        ctx = self.ctx
        indptr, starts, ends = ctx.condition_arrays(condition)
        lo = indptr[cur]
        counts = indptr[cur + 1] - lo
        row = np.repeat(np.arange(cur.size, dtype=np.int64), counts)
        pos = _ranges(lo, counts)
        return self._globals(row, starts[pos], ends[pos])

    # -- ops ------------------------------------------------------------- #
    def run(self, state: _State, ops: tuple) -> _State:
        deadline = self.deadline
        for completed, op in enumerate(ops):
            if state.rows == 0:
                break
            # Same chaos hook + deadline cadence as the interpreted
            # chain loop (one fire/check per columnar op).
            failpoints.fire("engine.step")
            if deadline is not None:
                deadline.progress["steps_completed"] = completed
                deadline.progress["frontier_rows"] = state.rows
                deadline.check()
            tag = op[0]
            if tag == "test":
                state = self._op_test(state, op[1])
            elif tag == "struct":
                state = self._op_struct(state, op[1])
            elif tag == "bind":
                state = _State(
                    state.cur,
                    state.names + (op[1],),
                    state.cols + [state.cur],
                    state.owner,
                    state.start,
                    state.end,
                )
            elif tag == "alt":
                state = self._op_alt(state, op[1])
            else:  # "temporal" — compile_ops guarantees it is final
                state = self._op_temporal(state, op[1])
        return state

    def _op_test(self, state: _State, condition: Test) -> _State:
        a_gs, a_ge = self._globals(state.owner, state.start, state.end)
        b_gs, b_ge = self._gather_condition(condition, state.cur)
        gs, ge, a_idx = _intersect_global(a_gs, a_ge, b_gs, b_ge)
        if a_idx.size == 0:
            return _empty_state(state.names)
        owner = state.owner[a_idx]
        base = owner * self.ctx.stride - self.ctx.domain_start
        return _compact(state, owner, gs - base, ge - base)

    def _op_struct(self, state: _State, forward: bool) -> _State:
        ctx = self.ctx
        cur = state.cur
        rows = state.rows
        indptr = ctx.out_indptr if forward else ctx.in_indptr
        ids = ctx.out_ids if forward else ctx.in_ids
        succ = ctx.succ_fwd if forward else ctx.succ_bwd
        node = ctx.is_node[cur]
        degree = np.where(node, indptr[cur + 1] - indptr[cur], 1)
        offsets = np.concatenate(([0], np.cumsum(degree)))
        total = int(offsets[-1])
        if total == 0:
            return _empty_state(state.names)
        new_cur = np.empty(total, dtype=np.int64)
        node_rows = np.flatnonzero(node)
        if node_rows.size:
            out_pos = _ranges(offsets[node_rows], degree[node_rows])
            adj_pos = _ranges(indptr[cur[node_rows]], degree[node_rows])
            new_cur[out_pos] = ids[adj_pos]
        edge_rows = np.flatnonzero(~node)
        if edge_rows.size:
            new_cur[offsets[edge_rows]] = succ[cur[edge_rows]]
        src_row = np.repeat(np.arange(rows, dtype=np.int64), degree)
        # Replicate each source row's interval family to its fan-out.
        ival_indptr = np.searchsorted(
            state.owner, np.arange(rows + 1, dtype=np.int64), side="left"
        )
        ival_counts = ival_indptr[src_row + 1] - ival_indptr[src_row]
        pos = _ranges(ival_indptr[src_row], ival_counts)
        fanned = _State(
            new_cur,
            state.names,
            [column[src_row] for column in state.cols],
            np.repeat(np.arange(total, dtype=np.int64), ival_counts),
            state.start[pos],
            state.end[pos],
        )
        return self._merge(fanned)

    def _op_alt(self, state: _State, branches: tuple) -> _State:
        parts = [self.run(state, branch) for branch in branches]
        parts = [part for part in parts if part.rows]
        if not parts:
            return _empty_state(state.names)
        owners = []
        offset = 0
        for part in parts:
            owners.append(part.owner + offset)
            offset += part.rows
        stacked = _State(
            np.concatenate([part.cur for part in parts]),
            state.names,
            [
                np.concatenate([part.cols[i] for part in parts])
                for i in range(len(state.names))
            ],
            np.concatenate(owners),
            np.concatenate([part.start for part in parts]),
            np.concatenate([part.end for part in parts]),
        )
        return self._merge(stacked)

    def _merge(self, state: _State) -> _State:
        """Coalescing-frontier merge: union families of signature-equal rows."""
        rows = state.rows
        if rows <= 1:
            return state
        group_of, reps = _group_rows([*state.cols, state.cur], rows)
        groups = reps.size
        if groups == rows:
            return state
        self.rows_merged += rows - groups
        ctx = self.ctx
        owner, start, end = _coalesce(
            ctx.stride, ctx.domain_start, group_of[state.owner], state.start, state.end
        )
        return _State(
            state.cur[reps],
            state.names,
            [column[reps] for column in state.cols],
            owner,
            start,
            end,
        )

    # -- final temporal step --------------------------------------------- #
    def _op_temporal(self, state: _State, step: TemporalStep) -> _State:
        """Fused final TemporalStep + Step-3 materialization.

        Per row with validity ``T``: the output family is
        ``T ∩ sources(targets(T) ∩ satisfied)``, the vectorized form of
        ``_apply_temporal`` (reachable windows ∩ fused conditions)
        followed by ``IntervalMaterializer.row_family`` on the two-group
        row (``alive[0] = T ∩ link_sources(alive[1])``).  Rows whose
        final family empties are dropped, exactly like ``families()``
        skipping ``row_family() is None``.
        """
        ctx = self.ctx
        d0, d1 = ctx.domain_start, ctx.domain_end
        stride = ctx.stride
        lower, upper = step.lower, step.upper
        forward = step.forward

        a_owner, a_s, a_e = state.owner, state.start, state.end
        a_gs, a_ge = self._globals(a_owner, a_s, a_e)

        run_row = run_s = run_e = run_gs = run_ge = None
        if step.require_existence:
            indptr = ctx.ex_indptr
            lo = indptr[state.cur]
            counts = indptr[state.cur + 1] - lo
            run_row = np.repeat(np.arange(state.rows, dtype=np.int64), counts)
            pos = _ranges(lo, counts)
            run_s = ctx.ex_start[pos]
            run_e = ctx.ex_end[pos]
            run_gs, run_ge = self._globals(run_row, run_s, run_e)

        # targets(T): the reachable windows, per row, coalesced.
        if step.require_existence:
            piece_owner: list = []
            piece_s: list = []
            piece_e: list = []
            if lower == 0:
                piece_owner.append(a_owner)
                piece_s.append(a_s)
                piece_e.append(a_e)
            if upper is None or upper >= 1:
                min_moves = max(lower, 1)
                shift = -1 if forward else 1
                ai, bi = _pairs(a_gs, a_ge, run_gs + shift, run_ge + shift)
                if ai.size:
                    anchor_s = np.maximum(a_s[ai], run_s[bi] + shift)
                    anchor_e = np.minimum(a_e[ai], run_e[bi] + shift)
                    if forward:
                        t_lo = anchor_s + min_moves
                        t_hi = (
                            run_e[bi]
                            if upper is None
                            else np.minimum(run_e[bi], anchor_e + upper)
                        )
                    else:
                        t_hi = anchor_e - min_moves
                        t_lo = (
                            run_s[bi]
                            if upper is None
                            else np.maximum(run_s[bi], anchor_s - upper)
                        )
                    keep = (t_lo <= t_hi) & (t_hi >= d0) & (t_lo <= d1)
                    piece_owner.append(a_owner[ai][keep])
                    piece_s.append(np.clip(t_lo[keep], d0, d1))
                    piece_e.append(np.clip(t_hi[keep], d0, d1))
            if piece_owner:
                w_owner = np.concatenate(piece_owner)
                w_s = np.concatenate(piece_s)
                w_e = np.concatenate(piece_e)
            else:
                w_owner = w_s = w_e = np.empty(0, dtype=np.int64)
        else:
            if forward:
                t_lo = a_s + lower
                t_hi = np.full_like(a_e, d1) if upper is None else a_e + upper
            else:
                t_hi = a_e - lower
                t_lo = np.full_like(a_s, d0) if upper is None else a_s - upper
            keep = (t_lo <= t_hi) & (t_hi >= d0) & (t_lo <= d1)
            w_owner = a_owner[keep]
            w_s = np.clip(t_lo[keep], d0, d1)
            w_e = np.clip(t_hi[keep], d0, d1)
        w_owner, w_s, w_e = _coalesce(stride, d0, w_owner, w_s, w_e)

        # ∩ fused target conditions (the step's absorbed static tests).
        w_gs, w_ge = self._globals(w_owner, w_s, w_e)
        for condition in step.target_conditions:
            if w_owner.size == 0:
                break
            b_gs, b_ge = self._gather_condition(condition, state.cur)
            w_gs, w_ge, w_idx = _intersect_global(w_gs, w_ge, b_gs, b_ge)
            w_owner = w_owner[w_idx]
        if w_owner.size == 0:
            return _empty_state(state.names)
        base = w_owner * stride - d0
        r_owner, r_s, r_e = w_owner, w_gs - base, w_ge - base

        # sources(reached): anchors that can reach the surviving windows.
        if step.require_existence:
            piece_owner = []
            piece_s = []
            piece_e = []
            if lower == 0:
                piece_owner.append(r_owner)
                piece_s.append(r_s)
                piece_e.append(r_e)
            if upper is None or upper >= 1:
                min_moves = max(lower, 1)
                r_gs, r_ge = self._globals(r_owner, r_s, r_e)
                ai, bi = _pairs(r_gs, r_ge, run_gs, run_ge)
                if ai.size:
                    pc_s = np.maximum(r_s[ai], run_s[bi])
                    pc_e = np.minimum(r_e[ai], run_e[bi])
                    if forward:
                        s_lo = (
                            run_s[bi] - 1
                            if upper is None
                            else np.maximum(run_s[bi] - 1, pc_s - upper)
                        )
                        s_hi = pc_e - min_moves
                    else:
                        s_lo = pc_s + min_moves
                        s_hi = (
                            run_e[bi] + 1
                            if upper is None
                            else np.minimum(run_e[bi] + 1, pc_e + upper)
                        )
                    keep = (s_lo <= s_hi) & (s_hi >= d0) & (s_lo <= d1)
                    piece_owner.append(r_owner[ai][keep])
                    piece_s.append(np.clip(s_lo[keep], d0, d1))
                    piece_e.append(np.clip(s_hi[keep], d0, d1))
            if piece_owner:
                src_owner = np.concatenate(piece_owner)
                src_s = np.concatenate(piece_s)
                src_e = np.concatenate(piece_e)
            else:
                src_owner = src_s = src_e = np.empty(0, dtype=np.int64)
        else:
            if forward:
                s_hi = r_e - lower
                s_lo = np.full_like(r_s, d0) if upper is None else r_s - upper
            else:
                s_lo = r_s + lower
                s_hi = np.full_like(r_e, d1) if upper is None else r_e + upper
            keep = (s_lo <= s_hi) & (s_hi >= d0) & (s_lo <= d1)
            src_owner = r_owner[keep]
            src_s = np.clip(s_lo[keep], d0, d1)
            src_e = np.clip(s_hi[keep], d0, d1)
        src_owner, src_s, src_e = _coalesce(stride, d0, src_owner, src_s, src_e)

        # Output family: T ∩ sources, per row; dry rows drop.
        src_gs, src_ge = self._globals(src_owner, src_s, src_e)
        out_gs, out_ge, a_idx = _intersect_global(a_gs, a_ge, src_gs, src_ge)
        if a_idx.size == 0:
            return _empty_state(state.names)
        owner = a_owner[a_idx]
        base = owner * stride - d0
        return _compact(state, owner, out_gs - base, out_ge - base)

    # -- output ----------------------------------------------------------- #
    def project(
        self, state: _State, variables: tuple[str, ...]
    ) -> list[tuple[tuple, IntervalSet]]:
        """Canonical ``(bindings, family)`` list, one entry per binding
        tuple — the columnar twin of ``IntervalMaterializer.families``."""
        rows = state.rows
        if rows == 0:
            return []
        missing = [v for v in variables if v not in state.names]
        if missing:
            raise EvaluationError(f"variables {missing} were never bound")
        column_for: dict[str, object] = {}
        for name, column in zip(state.names, state.cols):
            column_for[name] = column  # later binds win, like variable_positions
        group_of, reps = _group_rows([column_for[v] for v in variables], rows)
        groups = reps.size
        ctx = self.ctx
        owner, start, end = _coalesce(
            ctx.stride, ctx.domain_start, group_of[state.owner], state.start, state.end
        )
        indptr = np.searchsorted(
            owner, np.arange(groups + 1, dtype=np.int64), side="left"
        )
        objects = ctx.objects
        families = []
        for group in range(groups):
            representative = int(reps[group])
            bindings = tuple(
                (v, objects[int(column_for[v][representative])]) for v in variables
            )
            lo, hi = int(indptr[group]), int(indptr[group + 1])
            families.append(
                (
                    bindings,
                    IntervalSet._from_coalesced(
                        tuple(
                            Interval(int(start[k]), int(end[k]))
                            for k in range(lo, hi)
                        )
                    ),
                )
            )
        return families


# --------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------- #
def run_query(
    ctx: ColumnarContext,
    plan: ColumnarPlan,
    variables: tuple[str, ...],
    deadline=None,
) -> tuple[list, int, int]:
    """Evaluate a planned full query: ``(families, frontier_rows, merged)``.

    Seeds come straight from the context's condition CSR (or the full
    object range under domain times), never materializing per-row
    Python objects — this is where the kernel beats the interpreted
    path even on cheap full-scan queries.
    """
    if plan.seed_condition is not None and all(op[0] == "bind" for op in plan.ops):
        # Degenerate chain (Q1–Q4 shapes): the whole query is one
        # absorbed condition plus binds, so the memoized condition table
        # IS the answer — reuse its IntervalSet instances directly, no
        # arrays, no per-row objects.
        names = tuple(op[1] for op in plan.ops)
        if variables and all(v in names for v in variables):
            table = ctx._index.condition_table(plan.seed_condition)
            families = [
                (tuple((v, obj) for v in variables), times)
                for obj, times in table.items()
            ]
            return families, len(families), 0
    if plan.seed_condition is not None:
        indptr, starts, ends = ctx.condition_arrays(plan.seed_condition)
        counts = np.diff(indptr)
        cur = np.flatnonzero(counts).astype(np.int64)
        owner = np.repeat(np.arange(cur.size, dtype=np.int64), counts[cur])
        pos = _ranges(indptr[cur], counts[cur])
        state = _State(cur, (), [], owner, starts[pos], ends[pos])
    else:
        n = ctx.num_objects
        ids = np.arange(n, dtype=np.int64)
        state = _State(
            ids,
            (),
            [],
            ids.copy(),
            np.full(n, ctx.domain_start, dtype=np.int64),
            np.full(n, ctx.domain_end, dtype=np.int64),
        )
    kernel = _Kernel(ctx, deadline)
    state = kernel.run(state, plan.ops)
    return kernel.project(state, variables), state.rows, kernel.rows_merged


def run_rows(
    ctx: ColumnarContext,
    ops: tuple,
    rows: Sequence[Row],
    variables: tuple[str, ...],
    deadline=None,
) -> Optional[tuple[list, int, int]]:
    """Evaluate compiled ops over materialized seed rows.

    The row-based entry the worker-pool chunks and the streaming
    engine's per-seed re-derivations use.  Returns ``None`` when the
    rows don't fit the kernel's frontier shape (multi-group rows,
    non-uniform binding prefixes, empty families) — the caller falls
    back to the interpreted chain.
    """
    count = len(rows)
    if count == 0:
        return [], 0, 0
    object_id = ctx.object_id
    names: Optional[tuple[str, ...]] = None
    cur = np.empty(count, dtype=np.int64)
    interval_counts = np.empty(count, dtype=np.int64)
    binding_values: list[list[int]] = []
    starts: list[int] = []
    ends: list[int] = []
    for position, row in enumerate(rows):
        if len(row.groups) != 1:
            return None
        group = row.groups[0]
        row_names = tuple(name for name, _obj in group.bindings)
        if names is None:
            names = row_names
            binding_values = [[] for _ in row_names]
        elif row_names != names:
            return None
        obj_position = object_id.get(group.current)
        if obj_position is None:
            return None
        cur[position] = obj_position
        for slot, (_name, obj) in enumerate(group.bindings):
            bound = object_id.get(obj)
            if bound is None:
                return None
            binding_values[slot].append(bound)
        intervals = group.times.intervals
        if not intervals:
            return None
        interval_counts[position] = len(intervals)
        for interval in intervals:
            starts.append(interval.start)
            ends.append(interval.end)
    state = _State(
        cur,
        names or (),
        [np.asarray(values, dtype=np.int64) for values in binding_values],
        np.repeat(np.arange(count, dtype=np.int64), interval_counts),
        np.asarray(starts, dtype=np.int64),
        np.asarray(ends, dtype=np.int64),
    )
    kernel = _Kernel(ctx, deadline)
    state = kernel.run(state, ops)
    return kernel.project(state, variables), state.rows, kernel.rows_merged
