"""Temporal property graph models.

Two logical representations of the same conceptual model (Section III):

* :class:`~repro.model.tpg.TemporalPropertyGraph` — the point-based model
  of Definition III.1, where existence and property values are recorded
  per time point.
* :class:`~repro.model.itpg.IntervalTPG` — the succinct interval-
  timestamped representation of Definition A.1, where existence is a
  coalesced family of intervals and property values are coalesced
  families of valued intervals.

The two representations are interconvertible (:mod:`repro.model.convert`)
and share the same node/edge identifier space.  Snapshots
(:mod:`repro.model.snapshot`) project a temporal graph onto a
conventional property graph at a single time point, which is the basis
of the snapshot-reducibility tests.
"""

from repro.model.tpg import TemporalPropertyGraph
from repro.model.itpg import IntervalTPG
from repro.model.convert import tpg_to_itpg, itpg_to_tpg
from repro.model.snapshot import Snapshot, snapshot_at, snapshot_sequence
from repro.model.builder import GraphBuilder
from repro.model.examples import contact_tracing_example
from repro.model.stats import GraphStatistics, graph_statistics

__all__ = [
    "TemporalPropertyGraph",
    "IntervalTPG",
    "tpg_to_itpg",
    "itpg_to_tpg",
    "Snapshot",
    "snapshot_at",
    "snapshot_sequence",
    "GraphBuilder",
    "contact_tracing_example",
    "GraphStatistics",
    "graph_statistics",
]
