"""Conversion between the point-based and interval-based representations.

The paper observes (Appendix A) a one-to-one correspondence between TPGs
and ITPGs: a TPG is converted to an ITPG in polynomial time by putting
consecutive time points with the same values into maximal intervals; an
ITPG is converted back by expanding every interval to the set of time
points it represents (this direction is exponential in the interval
representation size, but linear in the number of time points).
"""

from __future__ import annotations

from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph
from repro.temporal.intervalset import IntervalSet
from repro.temporal.valued import ValuedIntervalSet


def tpg_to_itpg(graph: TemporalPropertyGraph) -> IntervalTPG:
    """Encode a point-based TPG as an interval-timestamped TPG.

    Existence points are coalesced into maximal intervals and property
    assignments are coalesced into valued-interval families, exactly as
    described in Section III-B.
    """
    itpg = IntervalTPG(graph.domain)
    for node_id in graph.nodes():
        itpg.add_node(
            node_id,
            graph.label(node_id),
            IntervalSet.from_points(graph.existence_points(node_id)),
        )
    for edge_id in graph.edges():
        src, tgt = graph.endpoints(edge_id)
        itpg.add_edge(
            edge_id,
            graph.label(edge_id),
            src,
            tgt,
            IntervalSet.from_points(graph.existence_points(edge_id)),
        )
    for object_id in graph.objects():
        for name in graph.property_names(object_id):
            assignments = graph.property_assignments(object_id, name)
            family = ValuedIntervalSet.from_points(assignments.items())
            for entry in family:
                itpg.set_property(
                    object_id, name, entry.value, entry.start, entry.end
                )
    return itpg


def itpg_to_tpg(graph: IntervalTPG) -> TemporalPropertyGraph:
    """Expand an ITPG into the equivalent point-based TPG (``can(·)`` of Section V-B)."""
    tpg = TemporalPropertyGraph(graph.domain)
    for node_id in graph.nodes():
        tpg.add_node(node_id, graph.label(node_id))
        tpg.set_existence(node_id, _points(graph.existence(node_id)))
    for edge_id in graph.edges():
        src, tgt = graph.endpoints(edge_id)
        tpg.add_edge(edge_id, graph.label(edge_id), src, tgt)
        tpg.set_existence(edge_id, _points(graph.existence(edge_id)))
    for object_id in graph.objects():
        for name in graph.property_names(object_id):
            for entry in graph.property_family(object_id, name):
                tpg.set_property(
                    object_id, name, entry.value, entry.interval.points()
                )
    return tpg


def _points(family: IntervalSet) -> list[int]:
    return list(family.points())
