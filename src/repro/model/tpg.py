"""Point-based temporal property graphs (Definition III.1).

A :class:`TemporalPropertyGraph` is a tuple ``(Ω, N, E, ρ, λ, ξ, σ)``:

* ``Ω`` — a finite set of consecutive natural numbers (the temporal
  domain), represented here by an :class:`~repro.temporal.interval.Interval`;
* ``N`` / ``E`` — disjoint finite sets of node and edge identifiers;
* ``ρ : E → N × N`` — source and target of each edge;
* ``λ : N ∪ E → Lab`` — the label of each object;
* ``ξ : (N ∪ E) × Ω → {true, false}`` — existence per time point;
* ``σ : (N ∪ E) × Prop × Ω ⇀ Val`` — property values per time point.

Two integrity conditions are enforced (see :mod:`repro.model.validate`):
an edge may only exist when both endpoints exist, and a property may only
take a value when the object exists.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Optional

from repro.errors import GraphIntegrityError, UnknownObjectError
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

ObjectId = Hashable
Label = str
PropertyName = str
Value = Hashable


class TemporalPropertyGraph:
    """Point-based temporal property graph.

    Existence and property values are stored per time point, which makes
    this the reference model for the paper's point-based semantics.  For
    large graphs the interval representation
    (:class:`~repro.model.itpg.IntervalTPG`) is far more compact; this
    class is primarily used as the semantic ground truth in tests and by
    the reference evaluation engine.
    """

    def __init__(self, domain: Interval | tuple[int, int]) -> None:
        if not isinstance(domain, Interval):
            domain = Interval(int(domain[0]), int(domain[1]))
        self._domain = domain
        self._node_labels: dict[ObjectId, Label] = {}
        self._edge_labels: dict[ObjectId, Label] = {}
        self._edge_endpoints: dict[ObjectId, tuple[ObjectId, ObjectId]] = {}
        self._existence: dict[ObjectId, set[int]] = {}
        self._properties: dict[ObjectId, dict[PropertyName, dict[int, Value]]] = {}
        # Adjacency indexes: node id -> edge ids.
        self._out_edges: dict[ObjectId, set[ObjectId]] = {}
        self._in_edges: dict[ObjectId, set[ObjectId]] = {}

    # ------------------------------------------------------------------ #
    # Domain
    # ------------------------------------------------------------------ #
    @property
    def domain(self) -> Interval:
        """The temporal domain ``Ω`` of the graph."""
        return self._domain

    def time_points(self) -> range:
        """All time points of the temporal domain in increasing order."""
        return self._domain.points()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: ObjectId, label: Label) -> None:
        """Register a node with the given label; existence is added separately."""
        if node_id in self._node_labels or node_id in self._edge_labels:
            raise GraphIntegrityError(f"object id {node_id!r} already in use")
        self._node_labels[node_id] = label
        self._existence[node_id] = set()
        self._properties[node_id] = {}
        self._out_edges[node_id] = set()
        self._in_edges[node_id] = set()

    def add_edge(
        self,
        edge_id: ObjectId,
        label: Label,
        source: ObjectId,
        target: ObjectId,
    ) -> None:
        """Register a directed edge from ``source`` to ``target``."""
        if edge_id in self._node_labels or edge_id in self._edge_labels:
            raise GraphIntegrityError(f"object id {edge_id!r} already in use")
        if source not in self._node_labels:
            raise UnknownObjectError(f"unknown source node {source!r}")
        if target not in self._node_labels:
            raise UnknownObjectError(f"unknown target node {target!r}")
        self._edge_labels[edge_id] = label
        self._edge_endpoints[edge_id] = (source, target)
        self._existence[edge_id] = set()
        self._properties[edge_id] = {}
        self._out_edges[source].add(edge_id)
        self._in_edges[target].add(edge_id)

    def set_existence(self, object_id: ObjectId, times: Iterable[int]) -> None:
        """Mark the object as existing at every time point of ``times``."""
        existence = self._existence_of(object_id)
        for t in times:
            if t not in self._domain:
                raise GraphIntegrityError(
                    f"time point {t} outside temporal domain {self._domain}"
                )
            existence.add(t)

    def set_property(
        self,
        object_id: ObjectId,
        name: PropertyName,
        value: Value,
        times: Iterable[int],
    ) -> None:
        """Assign ``value`` to property ``name`` at every time point of ``times``.

        The object must exist at each of those time points (Definition
        III.1 requires ``σ(o, p, t)`` defined ⇒ ``ξ(o, t) = true``).
        """
        existence = self._existence_of(object_id)
        slots = self._properties[object_id].setdefault(name, {})
        for t in times:
            if t not in self._domain:
                raise GraphIntegrityError(
                    f"time point {t} outside temporal domain {self._domain}"
                )
            if t not in existence:
                raise GraphIntegrityError(
                    f"property {name!r} of {object_id!r} set at time {t} "
                    "but the object does not exist then"
                )
            slots[t] = value

    def _existence_of(self, object_id: ObjectId) -> set[int]:
        try:
            return self._existence[object_id]
        except KeyError as exc:
            raise UnknownObjectError(f"unknown object {object_id!r}") from exc

    # ------------------------------------------------------------------ #
    # Object accessors (the functions of Definition III.1)
    # ------------------------------------------------------------------ #
    def nodes(self) -> Iterator[ObjectId]:
        """Iterate over node identifiers (the set ``N``)."""
        return iter(self._node_labels)

    def edges(self) -> Iterator[ObjectId]:
        """Iterate over edge identifiers (the set ``E``)."""
        return iter(self._edge_labels)

    def objects(self) -> Iterator[ObjectId]:
        """Iterate over all object identifiers (``N ∪ E``)."""
        yield from self._node_labels
        yield from self._edge_labels

    def is_node(self, object_id: ObjectId) -> bool:
        return object_id in self._node_labels

    def is_edge(self, object_id: ObjectId) -> bool:
        return object_id in self._edge_labels

    def has_object(self, object_id: ObjectId) -> bool:
        return object_id in self._existence

    def label(self, object_id: ObjectId) -> Label:
        """The function ``λ``: label of a node or an edge."""
        if object_id in self._node_labels:
            return self._node_labels[object_id]
        if object_id in self._edge_labels:
            return self._edge_labels[object_id]
        raise UnknownObjectError(f"unknown object {object_id!r}")

    def endpoints(self, edge_id: ObjectId) -> tuple[ObjectId, ObjectId]:
        """The function ``ρ``: (source, target) of an edge."""
        try:
            return self._edge_endpoints[edge_id]
        except KeyError as exc:
            raise UnknownObjectError(f"unknown edge {edge_id!r}") from exc

    def source(self, edge_id: ObjectId) -> ObjectId:
        """``src(e)``."""
        return self.endpoints(edge_id)[0]

    def target(self, edge_id: ObjectId) -> ObjectId:
        """``tgt(e)``."""
        return self.endpoints(edge_id)[1]

    def exists(self, object_id: ObjectId, t: int) -> bool:
        """The function ``ξ``: does the object exist at time ``t``?"""
        return t in self._existence_of(object_id)

    def existence_points(self, object_id: ObjectId) -> frozenset[int]:
        """All time points at which the object exists."""
        return frozenset(self._existence_of(object_id))

    def existence_intervals(self, object_id: ObjectId) -> IntervalSet:
        """The coalesced family of maximal existence intervals of the object."""
        return IntervalSet.from_points(self._existence_of(object_id))

    def property_value(
        self, object_id: ObjectId, name: PropertyName, t: int
    ) -> Optional[Value]:
        """The partial function ``σ``: value of ``name`` at time ``t`` or ``None``."""
        props = self._properties.get(object_id)
        if props is None:
            raise UnknownObjectError(f"unknown object {object_id!r}")
        slots = props.get(name)
        if slots is None:
            return None
        return slots.get(t)

    def property_names(self, object_id: ObjectId) -> frozenset[PropertyName]:
        """Names of the properties that are defined for the object at some time."""
        props = self._properties.get(object_id)
        if props is None:
            raise UnknownObjectError(f"unknown object {object_id!r}")
        return frozenset(name for name, slots in props.items() if slots)

    def property_assignments(
        self, object_id: ObjectId, name: PropertyName
    ) -> Mapping[int, Value]:
        """All ``time point → value`` assignments of one property of one object."""
        props = self._properties.get(object_id)
        if props is None:
            raise UnknownObjectError(f"unknown object {object_id!r}")
        return dict(props.get(name, {}))

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #
    def out_edges(self, node_id: ObjectId) -> frozenset[ObjectId]:
        """Edges whose source is ``node_id``."""
        try:
            return frozenset(self._out_edges[node_id])
        except KeyError as exc:
            raise UnknownObjectError(f"unknown node {node_id!r}") from exc

    def in_edges(self, node_id: ObjectId) -> frozenset[ObjectId]:
        """Edges whose target is ``node_id``."""
        try:
            return frozenset(self._in_edges[node_id])
        except KeyError as exc:
            raise UnknownObjectError(f"unknown node {node_id!r}") from exc

    # ------------------------------------------------------------------ #
    # Counting
    # ------------------------------------------------------------------ #
    def num_nodes(self) -> int:
        return len(self._node_labels)

    def num_edges(self) -> int:
        return len(self._edge_labels)

    def num_temporal_objects(self) -> int:
        """``|Ω| * (|N| + |E|)`` — the quantity ``M`` of Theorem C.1."""
        return len(self._domain) * (self.num_nodes() + self.num_edges())

    def num_existing_temporal_nodes(self) -> int:
        """Number of pairs ``(node, t)`` with ``ξ(node, t) = true``."""
        return sum(len(self._existence[n]) for n in self._node_labels)

    def num_existing_temporal_edges(self) -> int:
        """Number of pairs ``(edge, t)`` with ``ξ(edge, t) = true``."""
        return sum(len(self._existence[e]) for e in self._edge_labels)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"TemporalPropertyGraph(domain={self._domain}, "
            f"nodes={self.num_nodes()}, edges={self.num_edges()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalPropertyGraph):
            return NotImplemented
        return (
            self._domain == other._domain
            and self._node_labels == other._node_labels
            and self._edge_labels == other._edge_labels
            and self._edge_endpoints == other._edge_endpoints
            and self._existence == other._existence
            and self._properties == other._properties
        )
