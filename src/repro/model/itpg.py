"""Interval-timestamped temporal property graphs (Definition A.1).

An :class:`IntervalTPG` stores, for each node or edge, a *coalesced*
family of existence intervals (``ξ : N ∪ E → FC(Ω)``) and, for each
property of each object, a coalesced family of valued intervals
(``σ : (N ∪ E) × Prop → vFC(Ω)``).  The two integrity conditions of the
definition are enforced by :meth:`IntervalTPG.validate`:

* if ``ρ(e) = (n1, n2)`` then ``ξ(e) ⊑ ξ(n1)`` and ``ξ(e) ⊑ ξ(n2)``;
* the support of every property family is contained (``⊑``) in the
  existence family of its object.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

from repro.errors import GraphIntegrityError, UnknownObjectError
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet
from repro.temporal.valued import ValuedInterval, ValuedIntervalSet

ObjectId = Hashable
Label = str
PropertyName = str
Value = Hashable


class IntervalTPG:
    """Interval-timestamped temporal property graph (ITPG).

    This is the representation used by the dataflow engine and the
    workload generator: it is exponentially more succinct than the
    point-based :class:`~repro.model.tpg.TemporalPropertyGraph` when
    objects are stable over long stretches of time.
    """

    def __init__(self, domain: Interval | tuple[int, int]) -> None:
        if not isinstance(domain, Interval):
            domain = Interval(int(domain[0]), int(domain[1]))
        self._domain = domain
        self._node_labels: dict[ObjectId, Label] = {}
        self._edge_labels: dict[ObjectId, Label] = {}
        self._edge_endpoints: dict[ObjectId, tuple[ObjectId, ObjectId]] = {}
        self._existence: dict[ObjectId, IntervalSet] = {}
        self._properties: dict[ObjectId, dict[PropertyName, ValuedIntervalSet]] = {}
        self._out_edges: dict[ObjectId, set[ObjectId]] = {}
        self._in_edges: dict[ObjectId, set[ObjectId]] = {}

    # ------------------------------------------------------------------ #
    # Domain
    # ------------------------------------------------------------------ #
    @property
    def domain(self) -> Interval:
        """The temporal domain ``Ω`` as a single interval."""
        return self._domain

    def time_points(self) -> range:
        return self._domain.points()

    def extend_domain(self, new_end: int) -> None:
        """Advance the time-domain horizon ``Ω`` to end at ``new_end``.

        Streaming growth is append-only: the horizon can only move
        forward, so every existing interval stays inside the domain and
        no stored family needs rewriting.  ``new_end`` equal to the
        current end is a no-op; moving backwards raises
        :class:`GraphIntegrityError`.  Derived structures compiled
        against the old domain (a cached
        :class:`~repro.perf.graph_index.GraphIndex`, engine domain
        caches) are *not* refreshed here — the streaming layer
        (:mod:`repro.streaming`) owns that maintenance.
        """
        new_end = int(new_end)
        if new_end < self._domain.end:
            raise GraphIntegrityError(
                f"cannot shrink temporal domain {self._domain} to end at {new_end}: "
                "streaming growth is append-only"
            )
        if new_end == self._domain.end:
            return
        self._domain = Interval(self._domain.start, new_end)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        node_id: ObjectId,
        label: Label,
        existence: IntervalSet | Iterable[tuple[int, int]] = (),
    ) -> None:
        """Register a node; ``existence`` may be given now or extended later."""
        if node_id in self._node_labels or node_id in self._edge_labels:
            raise GraphIntegrityError(f"object id {node_id!r} already in use")
        self._node_labels[node_id] = label
        self._existence[node_id] = self._normalize_existence(existence)
        self._properties[node_id] = {}
        self._out_edges[node_id] = set()
        self._in_edges[node_id] = set()

    def add_edge(
        self,
        edge_id: ObjectId,
        label: Label,
        source: ObjectId,
        target: ObjectId,
        existence: IntervalSet | Iterable[tuple[int, int]] = (),
    ) -> None:
        """Register a directed edge from ``source`` to ``target``."""
        if edge_id in self._node_labels or edge_id in self._edge_labels:
            raise GraphIntegrityError(f"object id {edge_id!r} already in use")
        if source not in self._node_labels:
            raise UnknownObjectError(f"unknown source node {source!r}")
        if target not in self._node_labels:
            raise UnknownObjectError(f"unknown target node {target!r}")
        self._edge_labels[edge_id] = label
        self._edge_endpoints[edge_id] = (source, target)
        self._existence[edge_id] = self._normalize_existence(existence)
        self._properties[edge_id] = {}
        self._out_edges[source].add(edge_id)
        self._in_edges[target].add(edge_id)

    def add_existence(self, object_id: ObjectId, start: int, end: int) -> None:
        """Extend the existence family of an object with ``[start, end]``."""
        interval = Interval(start, end)
        if not interval.during(self._domain):
            raise GraphIntegrityError(
                f"existence {interval} of {object_id!r} outside domain {self._domain}"
            )
        current = self._existence_of(object_id)
        self._existence[object_id] = current.union(IntervalSet((interval,)))

    def set_property(
        self,
        object_id: ObjectId,
        name: PropertyName,
        value: Value,
        start: int,
        end: int,
    ) -> None:
        """Assign ``value`` to property ``name`` during ``[start, end]``."""
        interval = Interval(start, end)
        if not interval.during(self._domain):
            raise GraphIntegrityError(
                f"property interval {interval} of {object_id!r} outside domain"
            )
        props = self._properties.get(object_id)
        if props is None:
            raise UnknownObjectError(f"unknown object {object_id!r}")
        current = props.get(name, ValuedIntervalSet.empty())
        props[name] = current.merge(
            ValuedIntervalSet((ValuedInterval(value, interval),))
        )

    def _normalize_existence(
        self, existence: IntervalSet | Iterable[tuple[int, int]]
    ) -> IntervalSet:
        if isinstance(existence, IntervalSet):
            family = existence
        else:
            family = IntervalSet(Interval(int(a), int(b)) for a, b in existence)
        for iv in family:
            if not iv.during(self._domain):
                raise GraphIntegrityError(
                    f"existence interval {iv} outside temporal domain {self._domain}"
                )
        return family

    def _existence_of(self, object_id: ObjectId) -> IntervalSet:
        try:
            return self._existence[object_id]
        except KeyError as exc:
            raise UnknownObjectError(f"unknown object {object_id!r}") from exc

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def nodes(self) -> Iterator[ObjectId]:
        return iter(self._node_labels)

    def edges(self) -> Iterator[ObjectId]:
        return iter(self._edge_labels)

    def objects(self) -> Iterator[ObjectId]:
        yield from self._node_labels
        yield from self._edge_labels

    def is_node(self, object_id: ObjectId) -> bool:
        return object_id in self._node_labels

    def is_edge(self, object_id: ObjectId) -> bool:
        return object_id in self._edge_labels

    def has_object(self, object_id: ObjectId) -> bool:
        return object_id in self._existence

    def label(self, object_id: ObjectId) -> Label:
        if object_id in self._node_labels:
            return self._node_labels[object_id]
        if object_id in self._edge_labels:
            return self._edge_labels[object_id]
        raise UnknownObjectError(f"unknown object {object_id!r}")

    def endpoints(self, edge_id: ObjectId) -> tuple[ObjectId, ObjectId]:
        try:
            return self._edge_endpoints[edge_id]
        except KeyError as exc:
            raise UnknownObjectError(f"unknown edge {edge_id!r}") from exc

    def source(self, edge_id: ObjectId) -> ObjectId:
        return self.endpoints(edge_id)[0]

    def target(self, edge_id: ObjectId) -> ObjectId:
        return self.endpoints(edge_id)[1]

    def existence(self, object_id: ObjectId) -> IntervalSet:
        """The function ``ξ``: coalesced existence family of the object."""
        return self._existence_of(object_id)

    def exists(self, object_id: ObjectId, t: int) -> bool:
        """Point-wise existence check derived from the interval family."""
        return self._existence_of(object_id).contains_point(t)

    def properties(self, object_id: ObjectId) -> dict[PropertyName, ValuedIntervalSet]:
        """All property families of the object (a copy of the mapping)."""
        props = self._properties.get(object_id)
        if props is None:
            raise UnknownObjectError(f"unknown object {object_id!r}")
        return dict(props)

    def property_family(
        self, object_id: ObjectId, name: PropertyName
    ) -> ValuedIntervalSet:
        """The function ``σ`` for one property (empty family if never defined)."""
        props = self._properties.get(object_id)
        if props is None:
            raise UnknownObjectError(f"unknown object {object_id!r}")
        return props.get(name, ValuedIntervalSet.empty())

    def property_value(
        self, object_id: ObjectId, name: PropertyName, t: int
    ) -> Optional[Value]:
        """Point-wise property lookup derived from the valued-interval family."""
        return self.property_family(object_id, name).value_at(t)

    def property_names(self, object_id: ObjectId) -> frozenset[PropertyName]:
        props = self._properties.get(object_id)
        if props is None:
            raise UnknownObjectError(f"unknown object {object_id!r}")
        return frozenset(name for name, family in props.items() if family)

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #
    def out_edges(self, node_id: ObjectId) -> frozenset[ObjectId]:
        try:
            return frozenset(self._out_edges[node_id])
        except KeyError as exc:
            raise UnknownObjectError(f"unknown node {node_id!r}") from exc

    def in_edges(self, node_id: ObjectId) -> frozenset[ObjectId]:
        try:
            return frozenset(self._in_edges[node_id])
        except KeyError as exc:
            raise UnknownObjectError(f"unknown node {node_id!r}") from exc

    # ------------------------------------------------------------------ #
    # Counting (used by Table I)
    # ------------------------------------------------------------------ #
    def num_nodes(self) -> int:
        return len(self._node_labels)

    def num_edges(self) -> int:
        return len(self._edge_labels)

    def num_temporal_nodes(self) -> int:
        """Number of node *versions*: distinct (existence ∩ property-change) pieces.

        Table I of the paper reports "# temp. nodes" — the number of rows
        of the interval-timestamped node relation, i.e. one row per
        maximal stretch of time during which the node exists and none of
        its property values change.
        """
        return sum(self._num_versions(n) for n in self._node_labels)

    def num_temporal_edges(self) -> int:
        """Number of edge versions (rows of the interval edge relation)."""
        return sum(self._num_versions(e) for e in self._edge_labels)

    def _num_versions(self, object_id: ObjectId) -> int:
        boundaries: set[int] = set()
        existence = self._existence[object_id]
        for iv in existence:
            boundaries.add(iv.start)
            boundaries.add(iv.end + 1)
        for family in self._properties[object_id].values():
            for entry in family:
                boundaries.add(entry.start)
                boundaries.add(entry.end + 1)
        if not existence:
            return 0
        ordered = sorted(boundaries)
        count = 0
        for start, nxt in zip(ordered, ordered[1:]):
            if existence.contains_point(start):
                count += 1
        del nxt
        return count

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the integrity conditions of Definition A.1.

        Raises :class:`GraphIntegrityError` on the first violation.
        """
        for edge_id, (src, tgt) in self._edge_endpoints.items():
            edge_existence = self._existence[edge_id]
            if not edge_existence.is_subset_of(self._existence[src]):
                raise GraphIntegrityError(
                    f"edge {edge_id!r} exists outside the existence of its source {src!r}"
                )
            if not edge_existence.is_subset_of(self._existence[tgt]):
                raise GraphIntegrityError(
                    f"edge {edge_id!r} exists outside the existence of its target {tgt!r}"
                )
        for object_id, props in self._properties.items():
            existence = self._existence[object_id]
            for name, family in props.items():
                if not family.support().is_subset_of(existence):
                    raise GraphIntegrityError(
                        f"property {name!r} of {object_id!r} defined outside its existence"
                    )

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Pickle only the graph itself, never per-process caches.

        The perf layer memoizes derived structures on the graph instance
        under ``_repro_``-prefixed attributes (the compiled
        :class:`~repro.perf.graph_index.GraphIndex`, parallel execution
        plans).  Those caches are process-local — the process backend
        ships graphs to worker processes exactly so each worker can
        rebuild and memoize its own index — so they are stripped here
        rather than serialized along.
        """
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_repro_")
        }

    def __repr__(self) -> str:
        return (
            f"IntervalTPG(domain={self._domain}, nodes={self.num_nodes()}, "
            f"edges={self.num_edges()})"
        )
