"""A fluent builder for interval-timestamped temporal property graphs.

The builder mirrors the way the paper's figures describe graphs: an
object is declared with its label and a list of *versions*, where each
version is a validity interval plus the property values held during it.
Node ``n2`` of Figure 1, for instance, is two versions of the same
real-life object::

    builder.node("n2", "Person") \
        .version(1, 4, name="Bob", risk="low") \
        .version(5, 9, name="Bob", risk="high")

Calling :meth:`GraphBuilder.build` produces a validated
:class:`~repro.model.itpg.IntervalTPG`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.errors import GraphIntegrityError
from repro.model.itpg import IntervalTPG
from repro.temporal.interval import Interval

ObjectId = Hashable


@dataclass
class _Version:
    start: int
    end: int
    properties: dict[str, Hashable] = field(default_factory=dict)


class _ObjectBuilder:
    """Accumulates the versions of a single node or edge."""

    def __init__(self, builder: "GraphBuilder", object_id: ObjectId) -> None:
        self._builder = builder
        self._object_id = object_id
        self.versions: list[_Version] = []

    def version(self, start: int, end: int, **properties: Hashable) -> "_ObjectBuilder":
        """Add a validity interval ``[start, end]`` with the given property values."""
        self.versions.append(_Version(start, end, dict(properties)))
        return self

    def node(self, node_id: ObjectId, label: str) -> "_ObjectBuilder":
        """Shortcut back to the parent builder to declare the next node."""
        return self._builder.node(node_id, label)

    def edge(
        self, edge_id: ObjectId, label: str, source: ObjectId, target: ObjectId
    ) -> "_ObjectBuilder":
        """Shortcut back to the parent builder to declare the next edge."""
        return self._builder.edge(edge_id, label, source, target)

    def build(self) -> IntervalTPG:
        """Shortcut back to :meth:`GraphBuilder.build`."""
        return self._builder.build()


class GraphBuilder:
    """Fluent construction of an :class:`IntervalTPG`.

    Parameters
    ----------
    domain:
        The temporal domain ``Ω`` as ``(start, end)``.  If omitted, the
        domain is inferred as the hull of every declared version.
    """

    def __init__(self, domain: Optional[tuple[int, int]] = None) -> None:
        self._domain = domain
        self._nodes: dict[ObjectId, tuple[str, _ObjectBuilder]] = {}
        self._edges: dict[ObjectId, tuple[str, ObjectId, ObjectId, _ObjectBuilder]] = {}
        self._order: list[ObjectId] = []

    def node(self, node_id: ObjectId, label: str) -> _ObjectBuilder:
        """Declare a node and return its version accumulator."""
        if node_id in self._nodes or node_id in self._edges:
            raise GraphIntegrityError(f"object id {node_id!r} declared twice")
        ob = _ObjectBuilder(self, node_id)
        self._nodes[node_id] = (label, ob)
        self._order.append(node_id)
        return ob

    def edge(
        self, edge_id: ObjectId, label: str, source: ObjectId, target: ObjectId
    ) -> _ObjectBuilder:
        """Declare a directed edge and return its version accumulator."""
        if edge_id in self._nodes or edge_id in self._edges:
            raise GraphIntegrityError(f"object id {edge_id!r} declared twice")
        ob = _ObjectBuilder(self, edge_id)
        self._edges[edge_id] = (label, source, target, ob)
        self._order.append(edge_id)
        return ob

    def symmetric_edge(
        self,
        edge_id: ObjectId,
        label: str,
        a: ObjectId,
        b: ObjectId,
    ) -> tuple[_ObjectBuilder, _ObjectBuilder]:
        """Declare a bi-directional relationship as two mirrored directed edges.

        The paper's ``meets`` and ``cohabits`` edges are conceptually
        bi-directional; the formal model only has directed edges, so a
        symmetric relationship is stored as the pair ``edge_id`` (a→b)
        and ``f"{edge_id}_rev"`` (b→a).  The returned builders should be
        given the same versions.
        """
        forward = self.edge(edge_id, label, a, b)
        backward = self.edge(f"{edge_id}_rev", label, b, a)
        return forward, backward

    def build(self) -> IntervalTPG:
        """Materialize and validate the graph."""
        domain = self._domain or self._inferred_domain()
        graph = IntervalTPG(Interval(domain[0], domain[1]))
        for object_id in self._order:
            if object_id in self._nodes:
                label, ob = self._nodes[object_id]
                graph.add_node(object_id, label)
                self._apply_versions(graph, object_id, ob)
        for object_id in self._order:
            if object_id in self._edges:
                label, source, target, ob = self._edges[object_id]
                graph.add_edge(object_id, label, source, target)
                self._apply_versions(graph, object_id, ob)
        graph.validate()
        return graph

    def _apply_versions(
        self, graph: IntervalTPG, object_id: ObjectId, ob: _ObjectBuilder
    ) -> None:
        if not ob.versions:
            raise GraphIntegrityError(f"object {object_id!r} declared with no versions")
        for version in ob.versions:
            graph.add_existence(object_id, version.start, version.end)
            for name, value in version.properties.items():
                graph.set_property(object_id, name, value, version.start, version.end)

    def _inferred_domain(self) -> tuple[int, int]:
        starts: list[int] = []
        ends: list[int] = []
        for _label, ob in self._nodes.values():
            starts.extend(v.start for v in ob.versions)
            ends.extend(v.end for v in ob.versions)
        for _label, _s, _t, ob in self._edges.values():
            starts.extend(v.start for v in ob.versions)
            ends.extend(v.end for v in ob.versions)
        if not starts:
            raise GraphIntegrityError("cannot infer a temporal domain from an empty builder")
        return min(starts), max(ends)
