"""The running example of the paper: the Figure-1 contact-tracing TPG.

The graph contains two node types (``Person``, ``Room``) and three edge
types (``meets``, ``cohabits``, ``visits``).  The edge endpoints that are
not stated explicitly in the figure are reconstructed from the binding
tables that the paper reports for queries Q5–Q12 (they uniquely determine
every endpoint that affects those results; the one remaining free choice,
edge ``e7``, is attached to low-risk Ann so that it cannot influence any
reported result).

Edge inventory (source → target):

========  ========  ======  ======  ==============  ====================
edge      label     source  target  validity        properties
========  ========  ======  ======  ==============  ====================
``e1``    meets     n1      n2      [3,3], [5,6]    loc=cafe / loc=park
``e2``    meets     n2      n3      [1,2]           loc=park
``e5``    cohabits  n2      n3      [3,7]
``e3``    visits    n3      n4      [6,7]
``e6``    visits    n6      n5      [5,6]
``e7``    visits    n1      n5      [5,6]
``e8``    visits    n6      n4      [7,8]
``e9``    visits    n7      n4      [6,8]
``e10``   meets     n7      n6      [5,6]           loc=cafe
``e11``   meets     n3      n6      [4,4]           loc=park
========  ========  ======  ======  ==============  ====================
"""

from __future__ import annotations

from repro.model.builder import GraphBuilder
from repro.model.itpg import IntervalTPG


def contact_tracing_example() -> IntervalTPG:
    """Build the Figure-1 contact-tracing graph as an :class:`IntervalTPG`.

    The temporal domain is ``Ω = [1, 11]`` and the unit of time is a
    5-minute window, as in the paper's experiments.
    """
    builder = GraphBuilder(domain=(1, 11))

    # ----------------------------- nodes ----------------------------- #
    builder.node("n1", "Person").version(1, 9, name="Ann", risk="low")
    (
        builder.node("n2", "Person")
        .version(1, 4, name="Bob", risk="low")
        .version(5, 9, name="Bob", risk="high")
    )
    builder.node("n3", "Person").version(1, 7, name="Mia", risk="high")
    builder.node("n4", "Room").version(3, 8, num=750, bldg="CS")
    builder.node("n5", "Room").version(3, 7, num=1101, bldg="MATH")
    (
        builder.node("n6", "Person")
        .version(2, 8, name="Eve", risk="low")
        .version(9, 9, name="Eve", risk="low", test="pos")
        .version(10, 11, name="Eve", risk="low")
    )
    builder.node("n7", "Person").version(1, 8, name="Zoe", risk="high")

    # ----------------------------- edges ----------------------------- #
    (
        builder.edge("e1", "meets", "n1", "n2")
        .version(3, 3, loc="cafe")
        .version(5, 6, loc="park")
    )
    builder.edge("e2", "meets", "n2", "n3").version(1, 2, loc="park")
    builder.edge("e5", "cohabits", "n2", "n3").version(3, 7)
    builder.edge("e3", "visits", "n3", "n4").version(6, 7)
    builder.edge("e6", "visits", "n6", "n5").version(5, 6)
    builder.edge("e7", "visits", "n1", "n5").version(5, 6)
    builder.edge("e8", "visits", "n6", "n4").version(7, 8)
    builder.edge("e9", "visits", "n7", "n4").version(6, 8)
    builder.edge("e10", "meets", "n7", "n6").version(5, 6, loc="cafe")
    builder.edge("e11", "meets", "n3", "n6").version(4, 4, loc="park")

    return builder.build()


def tiny_example() -> IntervalTPG:
    """A three-node, two-edge graph used across unit tests.

    ``a --knows--> b --knows--> c``; ``b`` disappears in the middle of
    the domain so that existence-sensitive behaviour is exercised.
    """
    builder = GraphBuilder(domain=(0, 9))
    builder.node("a", "Person").version(0, 9, name="a")
    builder.node("b", "Person").version(0, 3, name="b").version(6, 9, name="b")
    builder.node("c", "Person").version(0, 9, name="c")
    builder.edge("ab", "knows", "a", "b").version(1, 3).version(7, 8)
    builder.edge("bc", "knows", "b", "c").version(2, 3).version(6, 9)
    return builder.build()
