"""Snapshots: conventional property graphs at a single time point.

A snapshot of a temporal property graph ``G`` at time ``t`` is the
non-temporal property graph containing exactly the nodes and edges that
exist at ``t``, with the property values they hold at ``t``.  Snapshots
are the semantic basis of *snapshot reducibility*: a temporal operator
applied to ``G`` must agree with the non-temporal operator applied to
each snapshot (Section II of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping, Optional, Union

from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph

ObjectId = Hashable
TemporalGraph = Union[TemporalPropertyGraph, IntervalTPG]


@dataclass
class Snapshot:
    """A conventional (non-temporal) property graph.

    Attributes
    ----------
    time:
        The time point this snapshot was taken at.
    node_labels / edge_labels:
        Labels of the nodes/edges present in the snapshot.
    edge_endpoints:
        ``edge id -> (source, target)`` for present edges.
    properties:
        ``object id -> {property name -> value}`` at the snapshot time.
    """

    time: int
    node_labels: dict[ObjectId, str] = field(default_factory=dict)
    edge_labels: dict[ObjectId, str] = field(default_factory=dict)
    edge_endpoints: dict[ObjectId, tuple[ObjectId, ObjectId]] = field(default_factory=dict)
    properties: dict[ObjectId, dict[str, Hashable]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def nodes(self) -> Iterator[ObjectId]:
        return iter(self.node_labels)

    def edges(self) -> Iterator[ObjectId]:
        return iter(self.edge_labels)

    def has_node(self, node_id: ObjectId) -> bool:
        return node_id in self.node_labels

    def has_edge(self, edge_id: ObjectId) -> bool:
        return edge_id in self.edge_labels

    def label(self, object_id: ObjectId) -> Optional[str]:
        return self.node_labels.get(object_id) or self.edge_labels.get(object_id)

    def property_value(self, object_id: ObjectId, name: str) -> Optional[Hashable]:
        return self.properties.get(object_id, {}).get(name)

    def out_edges(self, node_id: ObjectId) -> list[ObjectId]:
        return [e for e, (src, _t) in self.edge_endpoints.items() if src == node_id]

    def in_edges(self, node_id: ObjectId) -> list[ObjectId]:
        return [e for e, (_s, tgt) in self.edge_endpoints.items() if tgt == node_id]

    def num_nodes(self) -> int:
        return len(self.node_labels)

    def num_edges(self) -> int:
        return len(self.edge_labels)

    def to_networkx(self):
        """Export the snapshot as a ``networkx.MultiDiGraph`` (optional dependency)."""
        import networkx as nx

        out = nx.MultiDiGraph(time=self.time)
        for node_id, label in self.node_labels.items():
            out.add_node(node_id, label=label, **self.properties.get(node_id, {}))
        for edge_id, (src, tgt) in self.edge_endpoints.items():
            out.add_edge(
                src,
                tgt,
                key=edge_id,
                label=self.edge_labels[edge_id],
                **self.properties.get(edge_id, {}),
            )
        return out


def snapshot_at(graph: TemporalGraph, t: int) -> Snapshot:
    """Project a temporal graph (TPG or ITPG) onto its snapshot at time ``t``."""
    snap = Snapshot(time=t)
    for node_id in graph.nodes():
        if graph.exists(node_id, t):
            snap.node_labels[node_id] = graph.label(node_id)
            props = _properties_at(graph, node_id, t)
            if props:
                snap.properties[node_id] = props
    for edge_id in graph.edges():
        if graph.exists(edge_id, t):
            snap.edge_labels[edge_id] = graph.label(edge_id)
            snap.edge_endpoints[edge_id] = graph.endpoints(edge_id)
            props = _properties_at(graph, edge_id, t)
            if props:
                snap.properties[edge_id] = props
    return snap


def snapshot_sequence(graph: TemporalGraph) -> Iterator[Snapshot]:
    """The snapshot-sequence view of a temporal graph, one snapshot per time point."""
    for t in graph.time_points():
        yield snapshot_at(graph, t)


def _properties_at(graph: TemporalGraph, object_id: ObjectId, t: int) -> dict[str, Hashable]:
    values: dict[str, Hashable] = {}
    for name in graph.property_names(object_id):
        value = graph.property_value(object_id, name, t)
        if value is not None:
            values[name] = value
    return values
