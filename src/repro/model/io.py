"""Serialization of interval-timestamped temporal property graphs.

Two formats are supported:

* a JSON document mirroring the relational representation of Section VI
  (``Nodes(id, label, properties, time)`` / ``Edges(id, src, tgt, label,
  properties, time)``), one entry per object *version*;
* a pair of CSV files with the same schema, convenient for loading into
  external tools.

Only JSON-representable property values survive a round trip; this is
the same restriction the paper's implementation has (property values are
strings / numbers in the experimental graphs).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Hashable, Iterator, TextIO, Union

from repro.errors import GraphIntegrityError
from repro.model.itpg import IntervalTPG
from repro.temporal.interval import Interval

PathLike = Union[str, Path]


# --------------------------------------------------------------------- #
# Version extraction (shared by JSON and CSV writers)
# --------------------------------------------------------------------- #
def object_versions(graph: IntervalTPG, object_id: Hashable) -> Iterator[dict[str, Any]]:
    """Yield the versions of an object as ``{"start", "end", "properties"}`` rows.

    A version boundary occurs whenever the existence status or any
    property value changes; within a version nothing changes, so it can
    be stored as a single interval-timestamped row.
    """
    existence = graph.existence(object_id)
    if existence.is_empty():
        return
    boundaries: set[int] = set()
    for iv in existence:
        boundaries.add(iv.start)
        boundaries.add(iv.end + 1)
    families = graph.properties(object_id)
    for family in families.values():
        for entry in family:
            boundaries.add(entry.start)
            boundaries.add(entry.end + 1)
    ordered = sorted(boundaries)
    for start, nxt in zip(ordered, ordered[1:]):
        end = nxt - 1
        if not existence.contains_point(start):
            continue
        properties = {
            name: family.value_at(start)
            for name, family in families.items()
            if family.value_at(start) is not None
        }
        yield {"start": start, "end": end, "properties": properties}


# --------------------------------------------------------------------- #
# JSON
# --------------------------------------------------------------------- #
def to_json_dict(graph: IntervalTPG) -> dict[str, Any]:
    """Serialize an ITPG into a plain JSON-compatible dictionary."""
    nodes = []
    for node_id in graph.nodes():
        for version in object_versions(graph, node_id):
            nodes.append(
                {
                    "id": node_id,
                    "label": graph.label(node_id),
                    "properties": version["properties"],
                    "time": [version["start"], version["end"]],
                }
            )
    edges = []
    for edge_id in graph.edges():
        src, tgt = graph.endpoints(edge_id)
        for version in object_versions(graph, edge_id):
            edges.append(
                {
                    "id": edge_id,
                    "src": src,
                    "tgt": tgt,
                    "label": graph.label(edge_id),
                    "properties": version["properties"],
                    "time": [version["start"], version["end"]],
                }
            )
    return {
        "domain": [graph.domain.start, graph.domain.end],
        "nodes": nodes,
        "edges": edges,
    }


def from_json_dict(payload: dict[str, Any]) -> IntervalTPG:
    """Deserialize an ITPG from the dictionary produced by :func:`to_json_dict`."""
    try:
        domain = Interval(int(payload["domain"][0]), int(payload["domain"][1]))
    except (KeyError, IndexError, TypeError) as exc:
        raise GraphIntegrityError("missing or malformed 'domain' entry") from exc
    graph = IntervalTPG(domain)
    for row in payload.get("nodes", []):
        node_id = row["id"]
        if not graph.has_object(node_id):
            graph.add_node(node_id, row["label"])
        _apply_version(graph, node_id, row)
    for row in payload.get("edges", []):
        edge_id = row["id"]
        if not graph.has_object(edge_id):
            graph.add_edge(edge_id, row["label"], row["src"], row["tgt"])
        _apply_version(graph, edge_id, row)
    graph.validate()
    return graph


def _apply_version(graph: IntervalTPG, object_id: Hashable, row: dict[str, Any]) -> None:
    start, end = int(row["time"][0]), int(row["time"][1])
    graph.add_existence(object_id, start, end)
    for name, value in row.get("properties", {}).items():
        graph.set_property(object_id, name, value, start, end)


def save_json(graph: IntervalTPG, destination: Union[PathLike, TextIO]) -> None:
    """Write an ITPG to a JSON file or file-like object."""
    payload = to_json_dict(graph)
    if hasattr(destination, "write"):
        json.dump(payload, destination, indent=2, sort_keys=True)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def load_json(source: Union[PathLike, TextIO]) -> IntervalTPG:
    """Read an ITPG from a JSON file or file-like object."""
    if hasattr(source, "read"):
        payload = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    return from_json_dict(payload)


# --------------------------------------------------------------------- #
# CSV (Nodes / Edges relations of Section VI)
# --------------------------------------------------------------------- #
def save_csv(graph: IntervalTPG, nodes_path: PathLike, edges_path: PathLike) -> None:
    """Write the interval node and edge relations as two CSV files."""
    with open(nodes_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "label", "properties", "start", "end"])
        for node_id in graph.nodes():
            for version in object_versions(graph, node_id):
                writer.writerow(
                    [
                        node_id,
                        graph.label(node_id),
                        json.dumps(version["properties"], sort_keys=True),
                        version["start"],
                        version["end"],
                    ]
                )
    with open(edges_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "src", "tgt", "label", "properties", "start", "end"])
        for edge_id in graph.edges():
            src, tgt = graph.endpoints(edge_id)
            for version in object_versions(graph, edge_id):
                writer.writerow(
                    [
                        edge_id,
                        src,
                        tgt,
                        graph.label(edge_id),
                        json.dumps(version["properties"], sort_keys=True),
                        version["start"],
                        version["end"],
                    ]
                )


def load_csv(
    nodes_path: PathLike, edges_path: PathLike, domain: tuple[int, int] | None = None
) -> IntervalTPG:
    """Read an ITPG from the two CSV files produced by :func:`save_csv`."""
    node_rows = _read_csv(nodes_path)
    edge_rows = _read_csv(edges_path)
    if domain is None:
        starts = [int(r["start"]) for r in node_rows + edge_rows]
        ends = [int(r["end"]) for r in node_rows + edge_rows]
        if not starts:
            raise GraphIntegrityError("cannot infer domain from empty CSV files")
        domain = (min(starts), max(ends))
    graph = IntervalTPG(Interval(domain[0], domain[1]))
    for row in node_rows:
        node_id = row["id"]
        if not graph.has_object(node_id):
            graph.add_node(node_id, row["label"])
        _apply_csv_version(graph, node_id, row)
    for row in edge_rows:
        edge_id = row["id"]
        if not graph.has_object(edge_id):
            graph.add_edge(edge_id, row["label"], row["src"], row["tgt"])
        _apply_csv_version(graph, edge_id, row)
    graph.validate()
    return graph


def _apply_csv_version(graph: IntervalTPG, object_id: Hashable, row: dict[str, str]) -> None:
    start, end = int(row["start"]), int(row["end"])
    graph.add_existence(object_id, start, end)
    for name, value in json.loads(row["properties"] or "{}").items():
        graph.set_property(object_id, name, value, start, end)


def _read_csv(path: PathLike) -> list[dict[str, str]]:
    with open(path, "r", newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))


# --------------------------------------------------------------------- #
# NetworkX export
# --------------------------------------------------------------------- #
def to_networkx(graph: IntervalTPG):
    """Export an ITPG to a ``networkx.MultiDiGraph`` with interval attributes."""
    import networkx as nx

    out = nx.MultiDiGraph(domain=(graph.domain.start, graph.domain.end))
    for node_id in graph.nodes():
        out.add_node(
            node_id,
            label=graph.label(node_id),
            existence=[(iv.start, iv.end) for iv in graph.existence(node_id)],
            versions=list(object_versions(graph, node_id)),
        )
    for edge_id in graph.edges():
        src, tgt = graph.endpoints(edge_id)
        out.add_edge(
            src,
            tgt,
            key=edge_id,
            label=graph.label(edge_id),
            existence=[(iv.start, iv.end) for iv in graph.existence(edge_id)],
            versions=list(object_versions(graph, edge_id)),
        )
    return out
