"""Graph statistics in the format of Table I of the paper.

Table I reports, per experimental graph: the number of (unique) nodes,
the number of (unique) edges, the number of temporal nodes and the
number of temporal edges — where a *temporal object* is a row of the
interval-timestamped relation, i.e. one version of the object per
maximal interval during which nothing about it changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.model.convert import tpg_to_itpg
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph

TemporalGraph = Union[TemporalPropertyGraph, IntervalTPG]


@dataclass(frozen=True)
class GraphStatistics:
    """The four quantities reported per graph in Table I, plus the domain size."""

    num_nodes: int
    num_edges: int
    num_temporal_nodes: int
    num_temporal_edges: int
    num_time_points: int

    def as_row(self) -> dict[str, int]:
        """Dictionary form, convenient for tabular printing in benchmarks."""
        return {
            "# nodes": self.num_nodes,
            "# edges": self.num_edges,
            "# temp. nodes": self.num_temporal_nodes,
            "# temp. edges": self.num_temporal_edges,
            "|Omega|": self.num_time_points,
        }


def graph_statistics(graph: TemporalGraph) -> GraphStatistics:
    """Compute Table-I statistics for a TPG or an ITPG."""
    if isinstance(graph, TemporalPropertyGraph):
        itpg = tpg_to_itpg(graph)
    else:
        itpg = graph
    return GraphStatistics(
        num_nodes=itpg.num_nodes(),
        num_edges=itpg.num_edges(),
        num_temporal_nodes=itpg.num_temporal_nodes(),
        num_temporal_edges=itpg.num_temporal_edges(),
        num_time_points=len(itpg.domain),
    )
