"""The on-disk ``repro-index/1`` artifact container.

An artifact is a single file holding named flat *sections* behind a
checksummed header:

```
offset 0   magic          b"REPROIDX"                    (8 bytes)
offset 8   version        u32 little-endian              (4 bytes)
offset 12  header length  u64 little-endian              (8 bytes)
offset 20  header sha256  raw digest of the header JSON  (32 bytes)
offset 52  header JSON    {"format", "meta", "sections"}
...        body           the section payloads, back to back
```

The header JSON's ``sections`` table maps each section name to
``[offset, length, crc32]`` with offsets relative to the body start.
Integrity is layered for O(1) attach: the fixed header's SHA-256 guards
the section table and metadata eagerly (a flipped header byte is caught
before anything is trusted), section extents are bounds-checked against
the file size eagerly (truncation is caught at attach), and each
section's CRC-32 is verified *lazily* on first access — so attaching a
multi-gigabyte artifact never reads its body, while a corrupted section
still fails closed with a structured :class:`StoreCorruptError` the
moment it is used.  :func:`Artifact.verify` checks every section
eagerly for tools that want the full scan.

Writes are atomic: the artifact is assembled in a same-directory
temporary file, fsynced, and renamed over the destination (followed by
a directory fsync), so readers — including workers attaching mid-write
— only ever see either the old complete artifact or the new one.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import zlib
from typing import Any, Iterable, Mapping

from repro.errors import StoreCorruptError, StoreFormatError, StoreVersionError

MAGIC = b"REPROIDX"
FORMAT = "repro-index/1"
VERSION = 1

_FIXED = struct.Struct("<8sIQ32s")


def write_artifact(
    path: str, sections: Mapping[str, bytes], meta: Mapping[str, Any]
) -> dict:
    """Atomically write one artifact; returns a small report dict."""
    names = list(sections)
    table: dict[str, list[int]] = {}
    offset = 0
    for name in names:
        payload = sections[name]
        table[name] = [offset, len(payload), zlib.crc32(payload)]
        offset += len(payload)
    header = json.dumps(
        {"format": FORMAT, "meta": dict(meta), "sections": table},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    fixed = _FIXED.pack(MAGIC, VERSION, len(header), hashlib.sha256(header).digest())
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(fixed)
            handle.write(header)
            for name in names:
                handle.write(sections[name])
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(os.path.abspath(path)))
    return {
        "path": path,
        "bytes": _FIXED.size + len(header) + offset,
        "sections": {name: table[name][1] for name in names},
    }


def _fsync_dir(directory: str) -> None:
    """Make the rename durable (same discipline as the snapshot writer)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class Artifact:
    """One attached (mmapped, read-only) ``repro-index/1`` artifact."""

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            with open(path, "rb") as handle:
                fixed = handle.read(_FIXED.size)
                if len(fixed) < _FIXED.size:
                    raise StoreFormatError(
                        f"{path}: too short to be a repro-index artifact "
                        f"({len(fixed)} bytes)",
                        path=path,
                    )
                magic, version, header_len, digest = _FIXED.unpack(fixed)
                if magic != MAGIC:
                    raise StoreFormatError(
                        f"{path}: not a repro-index artifact (bad magic {magic!r})",
                        path=path,
                    )
                if version != VERSION:
                    raise StoreVersionError(
                        f"{path}: artifact format version {version} is not "
                        f"supported (expected {VERSION}); recompile with "
                        "'repro compile'",
                        path=path,
                        found=version,
                        expected=VERSION,
                    )
                header = handle.read(header_len)
                if len(header) < header_len:
                    raise StoreCorruptError(
                        f"{path}: truncated header ({len(header)} of "
                        f"{header_len} bytes)",
                        path=path,
                    )
                if hashlib.sha256(header).digest() != digest:
                    raise StoreCorruptError(
                        f"{path}: header checksum mismatch", path=path
                    )
                try:
                    parsed = json.loads(header.decode("utf-8"))
                except ValueError as exc:
                    raise StoreCorruptError(
                        f"{path}: header is not valid JSON despite a matching "
                        "checksum",
                        path=path,
                    ) from exc
                if parsed.get("format") != FORMAT:
                    raise StoreFormatError(
                        f"{path}: unexpected format {parsed.get('format')!r} "
                        f"(expected {FORMAT!r})",
                        path=path,
                    )
                self.meta: dict = parsed.get("meta", {})
                self._table: dict[str, list[int]] = parsed.get("sections", {})
                self._body_start = _FIXED.size + header_len
                size = os.fstat(handle.fileno()).st_size
                for name, (offset, length, _crc) in self._table.items():
                    if self._body_start + offset + length > size:
                        raise StoreCorruptError(
                            f"{path}: section {name!r} extends past the end of "
                            f"the file (truncated artifact?)",
                            path=path,
                            section=name,
                        )
                if size > self._body_start:
                    self._map = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                else:
                    self._map = None
        except OSError as exc:
            raise StoreFormatError(f"{path}: {exc}", path=path) from exc
        self._verified: set[str] = set()

    def has(self, name: str) -> bool:
        return name in self._table

    def names(self) -> Iterable[str]:
        return self._table.keys()

    def section(self, name: str) -> memoryview:
        """Zero-copy view of one section, CRC-checked on first access."""
        try:
            offset, length, crc = self._table[name]
        except KeyError as exc:
            raise StoreCorruptError(
                f"{self.path}: artifact has no section {name!r}",
                path=self.path,
                section=name,
            ) from exc
        if length == 0:
            return memoryview(b"")
        start = self._body_start + offset
        view = memoryview(self._map)[start : start + length]
        if name not in self._verified:
            if zlib.crc32(view) != crc:
                # Drop the export before raising: the exception's
                # traceback would otherwise keep the view alive and make
                # the subsequent mmap close fail with BufferError.
                view.release()
                raise StoreCorruptError(
                    f"{self.path}: section {name!r} failed its CRC-32 check "
                    "(corrupted artifact)",
                    path=self.path,
                    section=name,
                )
            self._verified.add(name)
        return view

    def verify(self) -> None:
        """Eagerly CRC-check every section (the full-scan integrity pass)."""
        for name in self._table:
            self.section(name)

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None
