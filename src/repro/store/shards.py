"""Sharded compiled-graph stores: the manifest format and shard planning.

A sharded store is a JSON *manifest* plus ``1 + N`` artifacts: one
*head* artifact holding the graph-wide tables (object table, labels,
endpoints, candidate buckets, the pickled graph) and ``N`` *shard*
artifacts each holding the per-object data sections (existence,
adjacency, properties) of one partition.  Shard boundaries come from
the same degree-weighted LPT partitioner the parallel backend uses for
seed chunks (:func:`repro.parallel.partition.weighted_chunks`), so a
worker that attaches only the shards its seeds live in touches a
balanced share of the data; parent-side result combination reuses
:mod:`repro.parallel.merge` unchanged — shard-local result chunks are
ordinary chunk results.

The manifest is tiny and human-readable::

    {"format": "repro-index-manifest/1",
     "token": "<compile-time identity, shared by every member>",
     "domain": [start, end], "num_objects": m, "num_nodes": n,
     "head": "graph.head.rix",
     "shards": [{"path": "graph.shard0.rix", "objects": k, "weight": w}, ...]}

Member paths are relative to the manifest's directory, so a store
directory can be moved or mounted elsewhere as a unit.  The manifest is
written atomically with the same tmp-file + rename + directory-fsync
discipline as the artifacts themselves, and every member records the
manifest's ``token`` in its own checksummed header — attach rejects a
mixed-generation store (a stale shard next to a fresh manifest) instead
of silently serving inconsistent data.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping, Sequence

from repro.errors import StoreFormatError, StoreVersionError
from repro.parallel.partition import weighted_chunks
from repro.store.format import _fsync_dir

MANIFEST_FORMAT = "repro-index-manifest/1"
MANIFEST_VERSION = 1


def plan_shards(
    objects: Sequence[Any],
    nodes: frozenset,
    out_adjacency: Mapping[Any, tuple],
    object_id: Mapping[Any, int],
    count: int,
) -> list[list[int]]:
    """Partition the object table into ``count`` member-position lists.

    Nodes are spread by the degree-weighted LPT heuristic (weight
    ``1 + out_degree`` — the same :func:`GraphIndex.seed_weight` shape
    the dispatcher balances seed chunks with); each edge is co-located
    with its source node, so one shard can answer a forward hop without
    touching its neighbours.  Every returned list is sorted ascending by
    dense position, ready to serve as a shard's ``members`` section.
    """
    count = max(1, int(count))
    node_list = [obj for obj in objects if obj in nodes]
    chunks = weighted_chunks(
        node_list, count, lambda node: 1 + len(out_adjacency[node])
    )
    members: list[list[int]] = []
    for chunk in chunks:
        positions = []
        for node in chunk:
            positions.append(object_id[node])
            for edge in out_adjacency[node]:
                positions.append(object_id[edge])
        positions.sort()
        members.append(positions)
    return [chunk for chunk in members if chunk] or [[]]


def write_manifest(path: str, manifest: Mapping[str, Any]) -> None:
    """Atomically write the manifest JSON (tmp + rename + dir fsync)."""
    payload = json.dumps(dict(manifest), indent=2, sort_keys=True) + "\n"
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(os.path.abspath(path)))


def read_manifest(path: str, text: str) -> dict:
    """Parse and validate manifest ``text`` (already read from ``path``)."""
    try:
        manifest = json.loads(text)
    except ValueError as exc:
        raise StoreFormatError(
            f"{path}: neither a repro-index artifact nor a readable manifest",
            path=path,
        ) from exc
    if not isinstance(manifest, dict):
        raise StoreFormatError(
            f"{path}: manifest must be a JSON object", path=path
        )
    fmt = manifest.get("format", "")
    if fmt != MANIFEST_FORMAT:
        if isinstance(fmt, str) and fmt.startswith("repro-index-manifest/"):
            try:
                found = int(fmt.rsplit("/", 1)[1])
            except ValueError:
                found = 0
            raise StoreVersionError(
                f"{path}: manifest format version {found} is not supported "
                f"(expected {MANIFEST_VERSION}); recompile with 'repro compile'",
                path=path,
                found=found,
                expected=MANIFEST_VERSION,
            )
        raise StoreFormatError(
            f"{path}: unexpected manifest format {fmt!r} "
            f"(expected {MANIFEST_FORMAT!r})",
            path=path,
        )
    for key in ("token", "head", "shards"):
        if key not in manifest:
            raise StoreFormatError(
                f"{path}: manifest is missing required key {key!r}", path=path
            )
    return manifest
