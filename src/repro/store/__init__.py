"""Persistent compiled-graph store: ``repro-index/1`` artifacts.

Compiling a graph's index is the dominant startup cost of every cold
process — server restarts recompile, every worker of the process
backend rebuilds its own copy from a pickled payload.  This package
makes the compiled index a *persistent, shareable* artifact instead:

* :func:`compile_graph` writes the index's flat tables (dense-id object
  table, adjacency, existence and property interval families, candidate
  buckets) into a checksummed single file — or a sharded store behind a
  manifest — atomically (:mod:`repro.store.format`,
  :mod:`repro.store.shards`);
* :func:`attach` mmaps an artifact read-only in O(1) and returns a
  ready graph + :class:`~repro.perf.graph_index.GraphIndex` whose
  tables decode lazily from the map, so attaching processes share page
  cache instead of holding private copies
  (:mod:`repro.store.artifact`);
* the parallel backend ships a tiny ``(path, token)``
  :class:`~repro.parallel.plan.StoreRef` for attached graphs, so
  workers attach the same artifact themselves — with the pickled
  payload kept as the self-healing fallback;
* :func:`repro.server.state.GraphHost.from_files` accepts a store and
  attaches on restart instead of recompiling.

Structured failure modes: :class:`~repro.errors.StoreFormatError` (not
an artifact / malformed), :class:`~repro.errors.StoreVersionError`
(incompatible format version), :class:`~repro.errors.StoreCorruptError`
(checksum or truncation).  See PERFORMANCE.md § "Persistent
compiled-graph store" and RELIABILITY.md for the integrity discipline.
"""

from repro.store.artifact import (
    AttachedCore,
    AttachedGraph,
    Attachment,
    attach,
    compile_graph,
)
from repro.store.format import FORMAT, VERSION, Artifact, write_artifact
from repro.store.shards import MANIFEST_FORMAT, plan_shards

__all__ = [
    "Artifact",
    "AttachedCore",
    "AttachedGraph",
    "Attachment",
    "FORMAT",
    "MANIFEST_FORMAT",
    "VERSION",
    "attach",
    "compile_graph",
    "plan_shards",
    "write_artifact",
]
