"""Persistent compiled-graph store: ``repro-index/1`` artifacts.

Compiling a graph's index is the dominant startup cost of every cold
process — server restarts recompile, every worker of the process
backend rebuilds its own copy from a pickled payload.  This package
makes the compiled index a *persistent, shareable* artifact instead:

* :func:`compile_graph` writes the index's flat tables (dense-id object
  table, adjacency, existence and property interval families, candidate
  buckets) into a checksummed single file — or a sharded store behind a
  manifest — atomically (:mod:`repro.store.format`,
  :mod:`repro.store.shards`);
* :func:`attach` mmaps an artifact read-only in O(1) and returns a
  ready graph + :class:`~repro.perf.graph_index.GraphIndex` whose
  tables decode lazily from the map, so attaching processes share page
  cache instead of holding private copies
  (:mod:`repro.store.artifact`);
* the parallel backend ships a tiny ``(path, token)``
  :class:`~repro.parallel.plan.StoreRef` for attached graphs, so
  workers attach the same artifact themselves — with the pickled
  payload kept as the self-healing fallback;
* :func:`repro.server.state.GraphHost.from_files` accepts a store and
  attaches on restart instead of recompiling.

Format invariants (``repro-index/1``) — the contract every reader and
writer in this package maintains:

* **Self-describing header.**  An artifact opens with a fixed magic +
  format version + the SHA-256 of its header JSON; anything else is
  rejected up front (:class:`~repro.errors.StoreFormatError` for
  not-an-artifact/malformed, :class:`~repro.errors.StoreVersionError`
  for an incompatible version).
* **Checksummed sections.**  The body is named flat sections, each
  carrying a CRC-32 verified lazily on first access (eagerly under
  ``--verify``); interval data is struct-packed little-endian ``<qq``
  pairs behind ``u64`` offset indexes, adjacency is dense-``u32`` id
  lists (``out_count`` prefix, then out- then in-edge ids).  Any
  checksum or truncation failure raises
  :class:`~repro.errors.StoreCorruptError` — corruption is never
  silently decoded.
* **Atomic visibility.**  Writes go to a temp file, fsync, then
  ``os.replace`` + directory fsync: a crashed compile never leaves a
  partial artifact under the final name.
* **Interval families are canonical on disk** — sorted, disjoint,
  gap-coalesced — so readers (including the columnar kernel's
  section-to-array decode, :meth:`AttachedCore.columnar_sections`)
  consume them without re-normalizing.
* **Sharded stores fail closed.**  Every member of a sharded manifest
  records the manifest's generation token; a mixed-generation store
  raises :class:`~repro.errors.StoreCorruptError` instead of serving a
  franken-graph.
* **Attachments are read-only.**  Mutation happens in the overlay dicts
  *above* the mmap (the streaming delta path); consumers that decode
  sections into private arrays must copy, because ``close()`` refuses
  to unmap while exported buffers exist.

See PERFORMANCE.md § "Persistent compiled-graph store" and
RELIABILITY.md for the measurements and the operational discipline.
"""

from repro.store.artifact import (
    AttachedCore,
    AttachedGraph,
    Attachment,
    attach,
    compile_graph,
)
from repro.store.format import FORMAT, VERSION, Artifact, write_artifact
from repro.store.shards import MANIFEST_FORMAT, plan_shards

__all__ = [
    "Artifact",
    "AttachedCore",
    "AttachedGraph",
    "Attachment",
    "FORMAT",
    "MANIFEST_FORMAT",
    "VERSION",
    "attach",
    "compile_graph",
    "plan_shards",
    "write_artifact",
]
