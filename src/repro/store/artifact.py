"""Compiling graphs to persistent artifacts and attaching them in O(1).

The writer (:func:`compile_graph`) serializes a graph's compiled index
— the same tables :class:`~repro.perf.graph_index.CompiledCore` builds
in memory — into the flat-section container of
:mod:`repro.store.format`, either as one self-contained artifact or as
a sharded store behind a manifest (:mod:`repro.store.shards`).

The reader (:func:`attach`) is the point of the exercise: it maps the
artifact read-only and returns a ready graph + index **without decoding
the body**.  Attach cost is the header check plus one unpickle of the
object table; every other table is a :class:`_LazyMap` that decodes
records straight out of the mmap on first touch, so a worker that runs
one query over one neighbourhood faults in only those pages — and every
process attaching the same artifact shares them through the OS page
cache instead of each holding a private unpickled copy.

Layout of the per-object data sections: for each of ``exist`` /
``adj`` / ``props`` there is an ``.idx`` section of ``len(members)+1``
little-endian u64 byte offsets and a ``.dat`` section holding the
records back to back (record ``i`` spans ``idx[i]..idx[i+1]``):

* ``exist`` records are packed ``<qq`` (start, end) pairs of the
  already-coalesced existence family — decoded zero-validation via
  :meth:`IntervalSet._from_coalesced`;
* ``adj`` records are a u32 out-degree followed by the out- then
  in-edge dense ids as u32 (edges get an empty record);
* ``props`` records are the pickled property mapping (empty record for
  objects without properties).

Dense ids (``objects`` positions) are the on-disk vocabulary; the
``objects`` section maps them back to user-facing identifiers.
"""

from __future__ import annotations

import os
import pickle
import struct
import uuid
from bisect import bisect_left
from typing import Any, Callable, Hashable, Iterator, Optional

from repro.errors import StoreCorruptError, StoreFormatError, UnknownObjectError
from repro.model.itpg import IntervalTPG
from repro.parallel.plan import StoreRef, bind_store
from repro.perf.graph_index import CompiledCore, GraphIndex, graph_index_for, install_index
from repro.store.format import MAGIC, Artifact, write_artifact
from repro.store.shards import plan_shards, read_manifest, write_manifest
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet
from repro.temporal.valued import ValuedIntervalSet

ObjectId = Hashable

_U32 = struct.Struct("<I")
_PAIR = struct.Struct("<qq")


# --------------------------------------------------------------------- #
# Section packing
# --------------------------------------------------------------------- #
def _pack_records(records: list[bytes]) -> tuple[bytes, bytes]:
    """``(idx, dat)`` sections: u64 offsets (with end sentinel) + payload."""
    offsets = [0]
    for record in records:
        offsets.append(offsets[-1] + len(record))
    idx = struct.pack(f"<{len(offsets)}Q", *offsets)
    return idx, b"".join(records)


def _exist_record(family: IntervalSet) -> bytes:
    return b"".join(_PAIR.pack(iv.start, iv.end) for iv in family)


def _adj_record(out_ids: list[int], in_ids: list[int]) -> bytes:
    ids = out_ids + in_ids
    return struct.pack(f"<I{len(ids)}I", len(out_ids), *ids)


def _props_record(families: dict) -> bytes:
    live = {name: family for name, family in families.items() if family}
    if not live:
        return b""
    return pickle.dumps(live, protocol=pickle.HIGHEST_PROTOCOL)


def _head_sections(core: CompiledCore, graph: object) -> dict[str, bytes]:
    """The graph-wide tables: object vocabulary, labels, endpoints, buckets."""
    dumps = lambda obj: pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)  # noqa: E731
    node_positions = [
        core.object_id[obj] for obj in core.objects if obj in core.nodes
    ]
    edges_in_order = [obj for obj in core.objects if obj in core.edges]
    return {
        "objects": dumps(core.objects),
        "nodekind": struct.pack(f"<{len(node_positions)}I", *node_positions),
        "labels": dumps(tuple(core.labels[obj] for obj in core.objects)),
        "endpoints": dumps(
            tuple(
                (core.edge_source[edge], core.edge_target[edge])
                for edge in edges_in_order
            )
        ),
        "buckets": dumps(
            (
                dict(core.node_label_buckets),
                dict(core.edge_label_buckets),
                dict(core.prop_value_buckets),
            )
        ),
        "graph": dumps(graph),
    }


def _data_sections(core: CompiledCore, members: list[int]) -> dict[str, bytes]:
    """Per-object records for the objects at dense positions ``members``."""
    exist_records: list[bytes] = []
    adj_records: list[bytes] = []
    props_records: list[bytes] = []
    for position in members:
        obj = core.objects[position]
        exist_records.append(_exist_record(core.existence[obj]))
        if obj in core.nodes:
            adj_records.append(
                _adj_record(
                    [core.object_id[e] for e in core.out_adjacency[obj]],
                    [core.object_id[e] for e in core.in_adjacency[obj]],
                )
            )
        else:
            adj_records.append(b"")
        props_records.append(_props_record(core.properties[obj]))
    sections: dict[str, bytes] = {}
    for name, records in (
        ("exist", exist_records),
        ("adj", adj_records),
        ("props", props_records),
    ):
        idx, dat = _pack_records(records)
        sections[f"{name}.idx"] = idx
        sections[f"{name}.dat"] = dat
    return sections


# --------------------------------------------------------------------- #
# Compile
# --------------------------------------------------------------------- #
def compile_graph(
    graph: IntervalTPG, path: str, *, shards: Optional[int] = None
) -> dict:
    """Write ``graph``'s compiled index to ``path``; returns a report.

    With ``shards=None`` the result is one self-contained artifact.
    With ``shards=N`` ``path`` is the *manifest* and the head/shard
    artifacts are written next to it (``<stem>.head.rix``,
    ``<stem>.shard<i>.rix``).  The snapshot reflects every delta batch
    already applied to the graph — compiling is always safe after
    streaming maintenance.
    """
    index = graph_index_for(graph)
    core = index.snapshot_core()
    source = index.graph  # the IntervalTPG (post tpg conversion / materialization)
    token = uuid.uuid4().hex
    meta = {
        "token": token,
        "domain": [core.domain.start, core.domain.end],
        "num_objects": len(core.objects),
        "num_nodes": len(core.nodes),
    }
    head = _head_sections(core, source)
    if shards is None:
        sections = dict(head)
        sections.update(_data_sections(core, list(range(len(core.objects)))))
        report = write_artifact(path, sections, {**meta, "kind": "index"})
        return {
            "path": path,
            "token": token,
            "sharded": False,
            "objects": len(core.objects),
            "nodes": len(core.nodes),
            "bytes": report["bytes"],
            "files": [report],
        }

    directory = os.path.dirname(os.path.abspath(path)) or "."
    stem = os.path.splitext(os.path.basename(path))[0]
    member_lists = plan_shards(
        core.objects, core.nodes, core.out_adjacency, core.object_id, shards
    )
    files = []
    head_name = f"{stem}.head.rix"
    files.append(
        write_artifact(
            os.path.join(directory, head_name), head, {**meta, "kind": "head"}
        )
    )
    shard_entries = []
    for number, members in enumerate(member_lists):
        shard_name = f"{stem}.shard{number}.rix"
        sections = {"members": struct.pack(f"<{len(members)}I", *members)}
        sections.update(_data_sections(core, members))
        files.append(
            write_artifact(
                os.path.join(directory, shard_name),
                sections,
                {**meta, "kind": "shard", "shard": number},
            )
        )
        shard_entries.append(
            {
                "path": shard_name,
                "objects": len(members),
                "weight": sum(
                    1 + len(core.out_adjacency[core.objects[p]])
                    for p in members
                    if core.objects[p] in core.nodes
                ),
            }
        )
    write_manifest(
        path,
        {
            "format": "repro-index-manifest/1",
            "token": token,
            "domain": meta["domain"],
            "num_objects": meta["num_objects"],
            "num_nodes": meta["num_nodes"],
            "head": head_name,
            "shards": shard_entries,
        },
    )
    return {
        "path": path,
        "token": token,
        "sharded": True,
        "shard_count": len(member_lists),
        "objects": len(core.objects),
        "nodes": len(core.nodes),
        "bytes": sum(f["bytes"] for f in files),
        "files": files,
    }


# --------------------------------------------------------------------- #
# Lazy maps
# --------------------------------------------------------------------- #
class _LazyMap(dict):
    """A dict whose misses decode from the artifact; writes are the overlay.

    Two loading styles:

    * ``load`` — per-key: a miss decodes exactly one record from the
      mmap and memoizes it (existence, adjacency, properties);
    * ``fill`` — whole-section: the first miss (or any enumeration)
      decodes the section once via ``setdefault`` so entries written
      earlier by delta maintenance are never clobbered (labels,
      endpoints, candidate buckets).

    Plain ``dict`` assignment *is* the mutable overlay
    :meth:`GraphIndex.apply_delta` writes to — stored keys always win
    over the artifact, so maintained entries shadow their stale on-disk
    records without the artifact ever being touched.
    """

    __slots__ = ("_load", "_fill", "_filled")

    def __init__(
        self,
        load: Optional[Callable[[Any], Any]] = None,
        fill: Optional[Callable[["_LazyMap"], None]] = None,
    ) -> None:
        super().__init__()
        self._load = load
        self._fill = fill
        self._filled = fill is None

    def _ensure_filled(self) -> None:
        if not self._filled:
            self._filled = True
            self._fill(self)

    def __missing__(self, key: Any) -> Any:
        if not self._filled:
            self._ensure_filled()
            if dict.__contains__(self, key):
                return dict.__getitem__(self, key)
            raise KeyError(key)
        if self._load is None:
            raise KeyError(key)
        value = self._load(key)
        dict.__setitem__(self, key, value)
        return value

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: Any) -> bool:
        if dict.__contains__(self, key):
            return True
        try:
            self[key]
        except KeyError:
            return False
        return True

    # Enumeration is only meaningful for fill-style maps; per-key maps
    # enumerate their materialized overlay, which callers never rely on
    # (the object table is the authoritative enumeration).
    def __iter__(self) -> Iterator:
        self._ensure_filled()
        return dict.__iter__(self)

    def __len__(self) -> int:
        self._ensure_filled()
        return dict.__len__(self)

    def keys(self):
        self._ensure_filled()
        return dict.keys(self)

    def values(self):
        self._ensure_filled()
        return dict.values(self)

    def items(self):
        self._ensure_filled()
        return dict.items(self)


# --------------------------------------------------------------------- #
# Attached parts and core
# --------------------------------------------------------------------- #
class _Part:
    """One data-bearing member of a store (the whole artifact, or a shard).

    Shard parts open lazily: a worker whose seeds all live in shard 0
    never opens shard 1's file.  Section views and cast index arrays
    are memoized per part, so record access after the first touch is a
    bounds-checked slice of the mmap.
    """

    __slots__ = ("path", "_token", "_artifact", "_members", "_sections")

    def __init__(
        self,
        path: Optional[str] = None,
        artifact: Optional[Artifact] = None,
        token: str = "",
    ) -> None:
        self.path = path if path is not None else (artifact.path if artifact else "")
        self._token = token
        self._artifact = artifact
        self._members: Optional[memoryview] = None
        self._sections: dict[str, memoryview] = {}

    @property
    def artifact(self) -> Artifact:
        if self._artifact is None:
            artifact = Artifact(self.path)
            kind = artifact.meta.get("kind")
            if kind != "shard":
                raise StoreFormatError(
                    f"{self.path}: expected a shard artifact, found kind {kind!r}",
                    path=self.path,
                )
            if self._token and artifact.meta.get("token") != self._token:
                raise StoreCorruptError(
                    f"{self.path}: shard token {artifact.meta.get('token')!r} does "
                    f"not match its manifest ({self._token!r}) — the store mixes "
                    "artifacts from different compilations",
                    path=self.path,
                )
            self._artifact = artifact
        return self._artifact

    def section(self, name: str) -> memoryview:
        view = self._sections.get(name)
        if view is None:
            view = self._sections[name] = self.artifact.section(name)
        return view

    def members(self) -> Optional[memoryview]:
        """Sorted global dense positions as a u32 view, or ``None`` when
        this part covers the identity range (single-file store)."""
        if self._members is None and self.artifact.has("members"):
            self._members = self.section("members").cast("I")
        return self._members

    def release_views(self) -> None:
        """Drop memoized views so the backing mmap can close cleanly."""
        self._sections.clear()
        self._members = None

    def record(self, name: str, local: int) -> memoryview:
        idx = self.section(f"{name}.idx").cast("Q")
        start, stop = idx[local], idx[local + 1]
        if start == stop:
            return memoryview(b"")
        return self.section(f"{name}.dat")[start:stop]

    def close(self) -> None:
        self.release_views()
        if self._artifact is not None:
            self._artifact.close()
            self._artifact = None


class AttachedCore:
    """:class:`CompiledCore`'s attribute surface, decoded lazily from a store.

    Eager work at attach: the header checks, one unpickle of the object
    table, and the dense-id/node-kind tables derived from it — a few
    C-speed passes over ``objects``.  Everything per-object stays on
    disk until first touched.
    """

    def __init__(self, head: Artifact, parts: list[_Part]) -> None:
        meta = head.meta
        try:
            self.token: str = meta["token"]
            domain = meta["domain"]
            declared = int(meta["num_objects"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptError(
                f"{head.path}: artifact metadata is missing required keys",
                path=head.path,
            ) from exc
        self.domain = Interval(int(domain[0]), int(domain[1]))
        self.objects: tuple[ObjectId, ...] = pickle.loads(head.section("objects"))
        if len(self.objects) != declared:
            raise StoreCorruptError(
                f"{head.path}: object table holds {len(self.objects)} entries, "
                f"header declares {declared}",
                path=head.path,
                section="objects",
            )
        self.object_id: dict[ObjectId, int] = {
            obj: position for position, obj in enumerate(self.objects)
        }
        node_positions = head.section("nodekind").cast("I")
        self._node_tuple: tuple[ObjectId, ...] = tuple(
            self.objects[position] for position in node_positions
        )
        self.nodes: frozenset = frozenset(self._node_tuple)
        self._edge_tuple: tuple[ObjectId, ...] = tuple(
            obj for obj in self.objects if obj not in self.nodes
        )
        self.edges: frozenset = frozenset(self._edge_tuple)

        self._head = head
        self._parts = parts
        self._endpoint_cache: Optional[tuple] = None
        self._bucket_cache: Optional[tuple] = None

        self.labels = _LazyMap(fill=self._fill_labels)
        self.existence = _LazyMap(load=self._load_existence)
        self.out_adjacency = _LazyMap(load=self._load_out_adjacency)
        self.in_adjacency = _LazyMap(load=self._load_in_adjacency)
        self.edge_source = _LazyMap(fill=self._fill_edge_source)
        self.edge_target = _LazyMap(fill=self._fill_edge_target)
        self.node_label_buckets = _LazyMap(fill=self._fill_node_buckets)
        self.edge_label_buckets = _LazyMap(fill=self._fill_edge_buckets)
        self.prop_value_buckets = _LazyMap(fill=self._fill_prop_buckets)
        self.properties = _LazyMap(load=self._load_properties)

    # -- record location ------------------------------------------------ #
    def _locate(self, position: int) -> tuple[_Part, int]:
        for part in self._parts:
            members = part.members()
            if members is None:
                return part, position
            local = bisect_left(members, position)
            if local < len(members) and members[local] == position:
                return part, local
        raise StoreCorruptError(
            f"{self._head.path}: dense position {position} is covered by no "
            "shard of the store",
            path=self._head.path,
        )

    # -- per-key loaders ------------------------------------------------ #
    def _load_existence(self, key: ObjectId) -> IntervalSet:
        part, local = self._locate(self.object_id[key])
        record = part.record("exist", local)
        return IntervalSet._from_coalesced(
            Interval(start, end) for start, end in _PAIR.iter_unpack(record)
        )

    def _adjacency(self, key: ObjectId) -> tuple[tuple, tuple]:
        if key not in self.nodes:
            raise KeyError(key)
        part, local = self._locate(self.object_id[key])
        record = part.record("adj", local)
        (out_count,) = _U32.unpack_from(record, 0)
        ids = record[4:].cast("I")
        out_ids = tuple(self.objects[i] for i in ids[:out_count])
        in_ids = tuple(self.objects[i] for i in ids[out_count:])
        return out_ids, in_ids

    def _load_out_adjacency(self, key: ObjectId) -> tuple:
        out_ids, in_ids = self._adjacency(key)
        dict.__setitem__(self.in_adjacency, key, in_ids)
        return out_ids

    def _load_in_adjacency(self, key: ObjectId) -> tuple:
        out_ids, in_ids = self._adjacency(key)
        dict.__setitem__(self.out_adjacency, key, out_ids)
        return in_ids

    def _load_properties(self, key: ObjectId) -> dict:
        part, local = self._locate(self.object_id[key])
        record = part.record("props", local)
        if len(record) == 0:
            return {}
        return pickle.loads(record)

    # -- whole-section fills -------------------------------------------- #
    def _fill_labels(self, target: _LazyMap) -> None:
        labels = pickle.loads(self._head.section("labels"))
        for obj, label in zip(self.objects, labels):
            target.setdefault(obj, label)

    def _endpoints(self) -> tuple:
        if self._endpoint_cache is None:
            self._endpoint_cache = pickle.loads(self._head.section("endpoints"))
        return self._endpoint_cache

    def _fill_edge_source(self, target: _LazyMap) -> None:
        for edge, (source, _tgt) in zip(self._edge_tuple, self._endpoints()):
            target.setdefault(edge, source)

    def _fill_edge_target(self, target: _LazyMap) -> None:
        for edge, (_src, tgt) in zip(self._edge_tuple, self._endpoints()):
            target.setdefault(edge, tgt)

    def _buckets(self) -> tuple:
        if self._bucket_cache is None:
            self._bucket_cache = pickle.loads(self._head.section("buckets"))
        return self._bucket_cache

    def _fill_node_buckets(self, target: _LazyMap) -> None:
        for label, bucket in self._buckets()[0].items():
            target.setdefault(label, bucket)

    def _fill_edge_buckets(self, target: _LazyMap) -> None:
        for label, bucket in self._buckets()[1].items():
            target.setdefault(label, bucket)

    def _fill_prop_buckets(self, target: _LazyMap) -> None:
        for key, bucket in self._buckets()[2].items():
            target.setdefault(key, bucket)

    # -- bulk decode ----------------------------------------------------- #
    def columnar_sections(self) -> Optional[tuple]:
        """Raw ``(exist.idx, exist.dat, adj.idx, adj.dat)`` memoryviews.

        The columnar kernel (:mod:`repro.perf.columnar`) decodes these
        four struct-packed sections straight into flat NumPy arrays —
        ``exist.idx`` is u64 byte offsets (16 bytes per ``<qq`` interval
        pair), ``adj.idx``/``adj.dat`` the u32 ``out_count + ids``
        records — skipping the per-record lazy-map walk entirely.  Only
        valid for a single-part store with the identity record layout
        (dense position == local record); sharded manifests return
        ``None`` and the caller falls back to the dict surface.
        Consumers must **copy** out of the views before the attachment
        closes (an exported buffer makes ``mmap.close`` raise).
        """
        if len(self._parts) != 1 or self._parts[0].members() is not None:
            return None
        part = self._parts[0]
        return (
            part.section("exist.idx"),
            part.section("exist.dat"),
            part.section("adj.idx"),
            part.section("adj.dat"),
        )

    # -- housekeeping --------------------------------------------------- #
    def node_enumeration(self) -> tuple[ObjectId, ...]:
        return self._node_tuple

    def edge_enumeration(self) -> tuple[ObjectId, ...]:
        return self._edge_tuple

    def graph_bytes(self) -> memoryview:
        return self._head.section("graph")

    def verify(self) -> None:
        """CRC-check every section of every member (opens all shards)."""
        self._head.verify()
        for part in self._parts:
            if part._artifact is not self._head:
                part.artifact.verify()

    def close(self) -> None:
        # Views memoized on the parts must be released before the mmaps
        # close (an exported buffer makes mmap.close raise BufferError).
        for part in self._parts:
            if part._artifact is self._head:
                part.release_views()
            else:
                part.close()
        self._head.close()


# --------------------------------------------------------------------- #
# The attached graph proxy
# --------------------------------------------------------------------- #
def _identity(graph: IntervalTPG) -> IntervalTPG:
    return graph


class AttachedGraph:
    """An :class:`IntervalTPG` look-alike backed by an attached core.

    Read accessors answer from the core's lazy maps, so a query that
    never leaves its neighbourhood never materializes the full graph.
    The first *mutation* (or any other attribute the proxy does not
    implement) unpickles the embedded graph section once and the proxy
    becomes a thin delegate to that real graph — reads included, so
    post-delta state is always coherent.

    Underscore attributes never materialize: the perf and parallel
    layers probe ``_repro_``-prefixed cache slots with ``getattr``
    defaults, and those probes must stay free.
    """

    def __init__(self, core: AttachedCore) -> None:
        self._core = core
        self._real: Optional[IntervalTPG] = None

    # -- materialization ------------------------------------------------ #
    def _materialize(self) -> IntervalTPG:
        if self._real is None:
            self._real = pickle.loads(self._core.graph_bytes())
        return self._real

    @property
    def materialized(self) -> bool:
        return self._real is not None

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._materialize(), name)

    def __reduce__(self):
        # Pickling the proxy (the parallel backend's payload fallback)
        # yields the real graph: workers must receive something whose
        # caches IntervalTPG.__getstate__ knows how to strip.
        return (_identity, (self._materialize(),))

    def __repr__(self) -> str:
        state = "materialized" if self._real is not None else "attached"
        return (
            f"AttachedGraph({state}, objects={len(self._core.objects)}, "
            f"domain={self._core.domain})"
        )

    # -- read surface ---------------------------------------------------- #
    @property
    def domain(self) -> Interval:
        if self._real is not None:
            return self._real.domain
        return self._core.domain

    def time_points(self) -> range:
        return self.domain.points()

    def nodes(self) -> Iterator[ObjectId]:
        if self._real is not None:
            return self._real.nodes()
        return iter(self._core.node_enumeration())

    def edges(self) -> Iterator[ObjectId]:
        if self._real is not None:
            return self._real.edges()
        return iter(self._core.edge_enumeration())

    def objects(self) -> Iterator[ObjectId]:
        if self._real is not None:
            return self._real.objects()
        return iter(self._core.objects)

    def is_node(self, object_id: ObjectId) -> bool:
        if self._real is not None:
            return self._real.is_node(object_id)
        return object_id in self._core.nodes

    def is_edge(self, object_id: ObjectId) -> bool:
        if self._real is not None:
            return self._real.is_edge(object_id)
        return object_id in self._core.edges

    def has_object(self, object_id: ObjectId) -> bool:
        if self._real is not None:
            return self._real.has_object(object_id)
        return object_id in self._core.object_id

    def label(self, object_id: ObjectId) -> str:
        if self._real is not None:
            return self._real.label(object_id)
        try:
            return self._core.labels[object_id]
        except KeyError as exc:
            raise UnknownObjectError(f"unknown object {object_id!r}") from exc

    def endpoints(self, edge_id: ObjectId) -> tuple[ObjectId, ObjectId]:
        if self._real is not None:
            return self._real.endpoints(edge_id)
        try:
            return (
                self._core.edge_source[edge_id],
                self._core.edge_target[edge_id],
            )
        except KeyError as exc:
            raise UnknownObjectError(f"unknown edge {edge_id!r}") from exc

    def source(self, edge_id: ObjectId) -> ObjectId:
        return self.endpoints(edge_id)[0]

    def target(self, edge_id: ObjectId) -> ObjectId:
        return self.endpoints(edge_id)[1]

    def existence(self, object_id: ObjectId) -> IntervalSet:
        if self._real is not None:
            return self._real.existence(object_id)
        try:
            return self._core.existence[object_id]
        except KeyError as exc:
            raise UnknownObjectError(f"unknown object {object_id!r}") from exc

    def exists(self, object_id: ObjectId, t: int) -> bool:
        return self.existence(object_id).contains_point(t)

    def properties(self, object_id: ObjectId) -> dict:
        if self._real is not None:
            return self._real.properties(object_id)
        try:
            return dict(self._core.properties[object_id])
        except KeyError as exc:
            raise UnknownObjectError(f"unknown object {object_id!r}") from exc

    def property_family(self, object_id: ObjectId, name: str) -> ValuedIntervalSet:
        if self._real is not None:
            return self._real.property_family(object_id, name)
        try:
            families = self._core.properties[object_id]
        except KeyError as exc:
            raise UnknownObjectError(f"unknown object {object_id!r}") from exc
        return families.get(name, ValuedIntervalSet.empty())

    def property_value(self, object_id: ObjectId, name: str, t: int):
        return self.property_family(object_id, name).value_at(t)

    def property_names(self, object_id: ObjectId) -> frozenset:
        if self._real is not None:
            return self._real.property_names(object_id)
        try:
            families = self._core.properties[object_id]
        except KeyError as exc:
            raise UnknownObjectError(f"unknown object {object_id!r}") from exc
        return frozenset(name for name, family in families.items() if family)

    def out_edges(self, node_id: ObjectId) -> frozenset:
        if self._real is not None:
            return self._real.out_edges(node_id)
        try:
            return frozenset(self._core.out_adjacency[node_id])
        except KeyError as exc:
            raise UnknownObjectError(f"unknown node {node_id!r}") from exc

    def in_edges(self, node_id: ObjectId) -> frozenset:
        if self._real is not None:
            return self._real.in_edges(node_id)
        try:
            return frozenset(self._core.in_adjacency[node_id])
        except KeyError as exc:
            raise UnknownObjectError(f"unknown node {node_id!r}") from exc

    def num_nodes(self) -> int:
        if self._real is not None:
            return self._real.num_nodes()
        return len(self._core.nodes)

    def num_edges(self) -> int:
        if self._real is not None:
            return self._real.num_edges()
        return len(self._core.edges)


# --------------------------------------------------------------------- #
# Attach
# --------------------------------------------------------------------- #
class Attachment:
    """One attached store: the proxy graph, its index, and the handles."""

    __slots__ = ("graph", "index", "core", "token", "path", "sharded")

    def __init__(
        self,
        graph: AttachedGraph,
        index: GraphIndex,
        core: AttachedCore,
        path: str,
        sharded: bool,
    ) -> None:
        self.graph = graph
        self.index = index
        self.core = core
        self.token = core.token
        self.path = path
        self.sharded = sharded

    def verify(self) -> None:
        self.core.verify()

    def close(self) -> None:
        self.core.close()


def attach(path: str) -> Attachment:
    """Attach a compiled store (single artifact or sharded manifest).

    O(1) in the graph size up to the object-table unpickle: no data
    section is decoded here.  The returned graph is ready for every
    engine — its compiled index is pre-installed
    (:func:`graph_index_for` returns it instead of recompiling) and its
    parallel identity is the artifact's persistent token, so worker
    processes attach the same file by reference instead of receiving a
    pickled copy.
    """
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(len(MAGIC))
    except OSError as exc:
        raise StoreFormatError(f"{path}: {exc}", path=path) from exc

    if prefix == MAGIC:
        head = Artifact(path)
        kind = head.meta.get("kind")
        if kind == "head":
            head.close()
            raise StoreFormatError(
                f"{path}: this is the head artifact of a sharded store; "
                "attach its manifest instead",
                path=path,
            )
        if kind == "shard":
            head.close()
            raise StoreFormatError(
                f"{path}: this is one shard of a sharded store; attach its "
                "manifest instead",
                path=path,
            )
        if kind != "index":
            head.close()
            raise StoreFormatError(
                f"{path}: unexpected artifact kind {kind!r}", path=path
            )
        parts = [_Part(artifact=head)]
        core = AttachedCore(head, parts)
        sharded = False
    else:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            raise StoreFormatError(
                f"{path}: neither a repro-index artifact nor a readable "
                "manifest",
                path=path,
            ) from exc
        manifest = read_manifest(path, text)
        base = os.path.dirname(os.path.abspath(path))
        token = manifest["token"]
        head = Artifact(os.path.join(base, manifest["head"]))
        if head.meta.get("kind") != "head":
            kind = head.meta.get("kind")
            head.close()
            raise StoreFormatError(
                f"{manifest['head']}: manifest head member has kind {kind!r}, "
                "expected 'head'",
                path=path,
            )
        if head.meta.get("token") != token:
            found = head.meta.get("token")
            head.close()
            raise StoreCorruptError(
                f"{manifest['head']}: head token {found!r} does not match its "
                f"manifest ({token!r}) — the store mixes artifacts from "
                "different compilations",
                path=path,
            )
        parts = [
            _Part(path=os.path.join(base, entry["path"]), token=token)
            for entry in manifest["shards"]
        ]
        core = AttachedCore(head, parts)
        sharded = True

    graph = AttachedGraph(core)
    index = GraphIndex(graph, core=core)
    install_index(graph, index)
    bind_store(graph, StoreRef(path=os.path.abspath(path), token=core.token))
    return Attachment(graph, index, core, path, sharded)
