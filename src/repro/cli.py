"""Command-line interface for the TRPQ library.

The CLI exposes the most common workflows without writing Python:

* ``python -m repro generate`` — generate a synthetic contact-tracing
  ITPG and save it as JSON;
* ``python -m repro stats`` — print Table-I statistics of a saved graph;
* ``python -m repro query`` — evaluate a MATCH clause over a saved graph
  (or over the built-in Figure-1 running example) and print the binding
  table; with ``--stream deltas.jsonl`` the query is kept incrementally
  answered while delta batches are applied, re-reporting after each;
* ``python -m repro example`` — dump the Figure-1 running example as
  JSON, as a starting point for experimentation.

Every command reads/writes the JSON format of :mod:`repro.model.io`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.datagen import ContactTracingConfig, TrajectoryConfig, generate_contact_tracing_graph
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.errors import ReproError
from repro.eval import ReferenceEngine
from repro.eval.bindings import IntervalBindingTable
from repro.model import contact_tracing_example, graph_statistics
from repro.model.io import load_json, save_json


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal regular path queries over temporal property graphs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic contact-tracing graph")
    generate.add_argument("--persons", type=int, default=200, help="number of Person nodes")
    generate.add_argument("--locations", type=int, default=80, help="number of campus locations")
    generate.add_argument("--rooms", type=int, default=20, help="number of Room nodes")
    generate.add_argument("--windows", type=int, default=48, help="number of time windows")
    generate.add_argument("--positivity", type=float, default=0.05, help="positivity rate (0..1)")
    generate.add_argument("--seed", type=int, default=11, help="random seed")
    generate.add_argument("--output", "-o", required=True, help="output JSON path")
    generate.add_argument(
        "--stream-batches",
        type=int,
        default=None,
        metavar="N",
        help="emit a streaming workload instead of one graph: write the "
        "initial prefix graph to --output and N delta batches (JSON lines, "
        "replayable via 'query --stream') to --stream-output",
    )
    generate.add_argument(
        "--stream-output",
        default=None,
        metavar="PATH",
        help="delta-batch output path (required with --stream-batches)",
    )
    generate.add_argument(
        "--stream-initial",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="share of events in the initial prefix graph (default 0.5)",
    )

    stats = sub.add_parser("stats", help="print Table-I statistics of a graph")
    stats.add_argument("graph", help="path to a graph JSON file")

    query = sub.add_parser("query", help="evaluate a MATCH clause over a graph")
    query.add_argument("match", help="a MATCH clause, or the name of a paper query (Q1..Q12)")
    query.add_argument("--graph", help="path to a graph JSON file (default: Figure-1 example)")
    query.add_argument(
        "--engine",
        choices=("dataflow", "reference", "reference-intervals"),
        default="dataflow",
        help="evaluation engine to use (reference-intervals runs the bottom-up "
        "evaluator on the coalesced diagonal representation)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        help="dataflow workers (0 = one per CPU core)",
    )
    query.add_argument(
        "--backend",
        choices=DataflowEngine.BACKENDS,
        default="thread",
        help="dataflow parallel backend: 'thread' (GIL-bound, cheap for small "
        "frontiers) or 'process' (worker-process pool that scales with cores)",
    )
    query.add_argument("--limit", type=int, default=25, help="rows to print (0 = all)")
    query.add_argument("--stats", action="store_true", help="print timing and output size")
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the execution plan (backend, workers, weighted chunk plan) "
        "before the results",
    )
    query.add_argument(
        "--intervals",
        action="store_true",
        help="print the coalesced interval output (one line per binding tuple "
        "with its maximal validity intervals) instead of expanding point rows",
    )
    query.add_argument(
        "--legacy-frontier",
        action="store_true",
        help="use the seed row-per-path frontier instead of the coalescing one",
    )
    query.add_argument(
        "--stream",
        default=None,
        metavar="PATH",
        help="apply delta batches from PATH (JSON lines, one DeltaBatch "
        "object per line) incrementally, re-reporting the match after each "
        "batch (dataflow engine only)",
    )

    example = sub.add_parser("example", help="write the Figure-1 running example as JSON")
    example.add_argument("--output", "-o", required=True, help="output JSON path")

    return parser


def _load_graph(path: Optional[str]):
    if path is None:
        return contact_tracing_example()
    return load_json(path)


def _resolve_query(text: str) -> str:
    if text in PAPER_QUERIES:
        return PAPER_QUERIES[text].text
    return text


def _cmd_generate(args: argparse.Namespace) -> int:
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=args.persons,
            num_locations=args.locations,
            num_rooms=args.rooms,
            num_windows=args.windows,
            seed=args.seed,
        ),
        positivity_rate=args.positivity,
        seed=args.seed,
    )
    if args.stream_batches is not None:
        if args.stream_output is None:
            print(
                "error: --stream-batches requires --stream-output",
                file=sys.stderr,
            )
            return 2
        from repro.datagen.streaming import contact_tracing_stream

        stream = contact_tracing_stream(
            config,
            num_batches=args.stream_batches,
            initial_fraction=args.stream_initial,
        )
        save_json(stream.initial, args.output)
        with open(args.stream_output, "w", encoding="utf-8") as handle:
            for batch in stream.batches:
                handle.write(json.dumps(batch.to_json_dict()) + "\n")
        print(
            f"wrote {args.output}: initial prefix with "
            f"{stream.initial.num_nodes()} nodes, {stream.initial.num_edges()} "
            f"edges ({stream.initial_events}/{stream.total_events} events)"
        )
        print(
            f"wrote {args.stream_output}: {len(stream.batches)} delta batches "
            f"(replay with: repro query <MATCH> --graph {args.output} "
            f"--stream {args.stream_output})"
        )
        return 0
    graph = generate_contact_tracing_graph(config)
    save_json(graph, args.output)
    stats = graph_statistics(graph)
    print(
        f"wrote {args.output}: {stats.num_nodes} nodes, {stats.num_edges} edges, "
        f"{stats.num_temporal_nodes} temporal nodes, {stats.num_temporal_edges} temporal edges"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_json(args.graph)
    stats = graph_statistics(graph).as_row()
    width = max(len(key) for key in stats)
    for key, value in stats.items():
        print(f"{key.ljust(width)}  {value}")
    return 0


def _print_families(families, limit: Optional[int]) -> None:
    """Render coalesced ``(bindings, IntervalSet)`` families, one per line."""
    ordered = sorted(
        families, key=lambda family: tuple(repr(obj) for _name, obj in family[0])
    )
    shown = ordered if limit is None else ordered[:limit]
    for bindings, times in shown:
        bound = ", ".join(f"{name}={obj}" for name, obj in bindings) or "<match>"
        spans = " u ".join(f"[{iv.start},{iv.end}]" for iv in times)
        print(f"{bound} @ {spans}")
    if limit is not None and len(ordered) > limit:
        print(f"... ({len(ordered) - limit} more families)")


def _print_explain(plan: dict) -> None:
    """Render :meth:`DataflowEngine.explain` output, one ``#`` line each."""
    print(
        f"# plan: backend={plan['backend']} "
        f"(effective: {plan['effective_backend']}), workers={plan['workers']}, "
        f"output={plan['output_mode']}"
    )
    print(
        f"# plan: {plan['seed_rows']} seed rows, {plan['chain_steps']} chain steps, "
        f"{len(plan['chunks'])} chunk(s)"
    )
    for position, chunk in enumerate(plan["chunks"]):
        print(
            f"# plan: chunk {position}: {chunk['seeds']} seeds, "
            f"weight {chunk['weight']}"
        )


def _stream_batches(path: str):
    """Parse a delta-batch stream file: one JSON DeltaBatch per line."""
    from repro.streaming import DeltaBatch

    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: invalid JSON ({error})") from error
            try:
                yield DeltaBatch.from_json_dict(payload)
            except (KeyError, TypeError, AttributeError) as error:
                raise ValueError(
                    f"{path}:{number}: invalid delta batch "
                    f"({type(error).__name__}: {error})"
                ) from error


def _run_stream(engine: DataflowEngine, text: str, path: str) -> None:
    """The --stream loop: apply each batch, report the output drift."""
    result = engine.match_with_stats(text)
    size = result.output_size
    print(f"# stream: initial graph {engine.graph}, output size {size}")
    for number, batch in enumerate(_stream_batches(path), start=1):
        applied = engine.apply_delta(batch)
        new_size = len(engine.match(text))
        sequence = "-" if applied.sequence is None else str(applied.sequence)
        horizon = (
            f", horizon -> {engine.graph.domain.end}"
            if applied.horizon_advanced
            else ""
        )
        print(
            f"# batch {number} (seq {sequence}): +{applied.new_nodes} nodes "
            f"+{applied.new_edges} edges ~{applied.touched_objects} touched"
            f"{horizon} | seeds re-derived {applied.affected_seeds}"
            f"/{applied.total_seeds} | output {new_size} ({new_size - size:+d})"
        )
        size = new_size


def _cmd_query(args: argparse.Namespace) -> int:
    # Pure argument validation comes first, before any graph loading.
    if args.engine != "dataflow" and (
        args.backend != "thread" or args.explain or args.stream
    ):
        print(
            "error: --backend, --explain and --stream apply to the dataflow "
            f"engine only (got --engine {args.engine})",
            file=sys.stderr,
        )
        return 2
    graph = _load_graph(args.graph)
    text = _resolve_query(args.match)
    limit = None if args.limit == 0 else args.limit
    if args.engine == "dataflow":
        engine = DataflowEngine(
            graph,
            workers=args.workers,
            use_coalesced=not args.legacy_frontier,
            parallel_backend=args.backend,
            incremental=args.stream is not None,
        )
        if args.explain:
            _print_explain(engine.explain(text))
        if args.stream:
            try:
                _run_stream(engine, text, args.stream)
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
    else:
        engine = ReferenceEngine(
            graph, use_intervals=(args.engine == "reference-intervals")
        )
    if args.intervals:
        families = engine.match_intervals(text)
        if args.stats:
            intervals = sum(len(times) for _bindings, times in families)
            points = sum(times.total_points() for _bindings, times in families)
            print(
                f"# {len(families)} families, {intervals} intervals, "
                f"{points} points"
            )
        _print_families(families, limit)
        return 0
    if args.engine == "dataflow":
        result = engine.match_with_stats(text)
        table = result.table
        if args.stats:
            frontier_mode = "legacy rows" if args.legacy_frontier else "coalesced"
            print(
                f"# interval time {result.interval_seconds:.4f}s, "
                f"total time {result.total_seconds:.4f}s, "
                f"output size {result.output_size}"
            )
            print(
                f"# frontier: {frontier_mode}, {result.frontier_rows} rows, "
                f"{result.rows_merged} merged"
            )
            if isinstance(table, IntervalBindingTable):
                print(
                    f"# output kept interval-native: {table.num_families()} "
                    f"families, {table.num_intervals()} intervals "
                    "(rows expand lazily)"
                )
    else:
        table = engine.match(text)
        if args.stats:
            print(f"# output size {len(table)}")
    print(table.pretty(limit=limit))
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    save_json(contact_tracing_example(), args.output)
    print(f"wrote the Figure-1 running example to {args.output}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "query": _cmd_query,
    "example": _cmd_example,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro`` (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
