"""Command-line interface for the TRPQ library.

The CLI exposes the most common workflows without writing Python:

* ``python -m repro generate`` — generate a synthetic contact-tracing
  ITPG and save it as JSON;
* ``python -m repro stats`` — print Table-I statistics of a saved graph;
* ``python -m repro query`` — evaluate a MATCH clause over a saved graph
  (or over the built-in Figure-1 running example) and print the binding
  table; with ``--stream deltas.jsonl`` the query is kept incrementally
  answered while delta batches are applied, re-reporting after each;
* ``python -m repro serve`` — run the always-on query service: graphs
  and their compiled indexes stay resident, execution plans are cached,
  and clients speak JSON lines over TCP (see RELIABILITY.md);
* ``python -m repro compile`` — compile a graph's index into a
  persistent ``repro-index`` artifact (optionally sharded behind a
  manifest); ``query --store`` and ``serve --store`` then attach it in
  O(1) instead of loading JSON and recompiling;
* ``python -m repro example`` — dump the Figure-1 running example as
  JSON, as a starting point for experimentation.

Every command reads/writes the JSON format of :mod:`repro.model.io`;
``compile`` writes the binary artifact format of :mod:`repro.store`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.datagen import ContactTracingConfig, TrajectoryConfig, generate_contact_tracing_graph
from repro.dataflow import DataflowEngine, PAPER_QUERIES
from repro.errors import ReproError
from repro.eval import ReferenceEngine
from repro.eval.bindings import IntervalBindingTable
from repro.model import contact_tracing_example, graph_statistics
from repro.model.io import load_json, save_json


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float (``--deadline``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0 (``--retries``, ``--workers``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (``--snapshot-every``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal regular path queries over temporal property graphs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic contact-tracing graph")
    generate.add_argument("--persons", type=int, default=200, help="number of Person nodes")
    generate.add_argument("--locations", type=int, default=80, help="number of campus locations")
    generate.add_argument("--rooms", type=int, default=20, help="number of Room nodes")
    generate.add_argument("--windows", type=int, default=48, help="number of time windows")
    generate.add_argument("--positivity", type=float, default=0.05, help="positivity rate (0..1)")
    generate.add_argument("--seed", type=int, default=11, help="random seed")
    generate.add_argument("--output", "-o", required=True, help="output JSON path")
    generate.add_argument(
        "--stream-batches",
        type=int,
        default=None,
        metavar="N",
        help="emit a streaming workload instead of one graph: write the "
        "initial prefix graph to --output and N delta batches (JSON lines, "
        "replayable via 'query --stream') to --stream-output",
    )
    generate.add_argument(
        "--stream-output",
        default=None,
        metavar="PATH",
        help="delta-batch output path (required with --stream-batches)",
    )
    generate.add_argument(
        "--stream-initial",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="share of events in the initial prefix graph (default 0.5)",
    )

    stats = sub.add_parser("stats", help="print Table-I statistics of a graph")
    stats.add_argument("graph", help="path to a graph JSON file")

    query = sub.add_parser("query", help="evaluate a MATCH clause over a graph")
    query.add_argument("match", help="a MATCH clause, or the name of a paper query (Q1..Q12)")
    query.add_argument("--graph", help="path to a graph JSON file (default: Figure-1 example)")
    query.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="attach a compiled repro-index artifact (or sharded-store "
        "manifest) written by 'repro compile' instead of loading a JSON "
        "graph (dataflow engine only; mutually exclusive with --graph)",
    )
    query.add_argument(
        "--engine",
        choices=("dataflow", "reference", "reference-intervals"),
        default="dataflow",
        help="evaluation engine to use (reference-intervals runs the bottom-up "
        "evaluator on the coalesced diagonal representation)",
    )
    query.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        help="dataflow workers (0 = one per CPU core)",
    )
    query.add_argument(
        "--backend",
        choices=("serial",) + DataflowEngine.BACKENDS,
        default="thread",
        help="dataflow parallel backend: 'serial' (single-threaded, rejects "
        "--workers > 1), 'thread' (GIL-bound, cheap for small frontiers) or "
        "'process' (worker-process pool that scales with cores)",
    )
    query.add_argument(
        "--kernel",
        choices=DataflowEngine.KERNELS,
        default="interpreted",
        help="dataflow evaluation kernel: 'interpreted' (per-row Python chain "
        "walk) or 'columnar' (vectorized NumPy sweeps over flat interval "
        "arrays; falls back to interpreted for uncovered step shapes — see "
        "--explain)",
    )
    query.add_argument("--limit", type=int, default=25, help="rows to print (0 = all)")
    query.add_argument("--stats", action="store_true", help="print timing and output size")
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the execution plan (backend, workers, weighted chunk plan) "
        "before the results",
    )
    query.add_argument(
        "--intervals",
        action="store_true",
        help="print the coalesced interval output (one line per binding tuple "
        "with its maximal validity intervals) instead of expanding point rows",
    )
    query.add_argument(
        "--legacy-frontier",
        action="store_true",
        help="use the seed row-per-path frontier instead of the coalescing one",
    )
    query.add_argument(
        "--stream",
        default=None,
        metavar="PATH",
        help="apply delta batches from PATH (JSON lines, one DeltaBatch "
        "object per line) incrementally, re-reporting the match after each "
        "batch (dataflow engine only)",
    )
    query.add_argument(
        "--deadline",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-query wall-clock budget; on expiry the query is cancelled "
        "with a structured DeadlineExceeded error (dataflow engine only)",
    )
    query.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="retry crash-shaped process-backend failures up to N times with "
        "exponential backoff, then degrade process -> thread -> serial "
        "(dataflow engine only; default: fail fast)",
    )
    query.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help="with --stream: append every applied batch to a checksummed "
        "write-ahead log at PATH (replayable via 'repro recover')",
    )
    query.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="with --stream: periodically write an atomic engine snapshot "
        "to PATH (see --snapshot-every)",
    )
    query.add_argument(
        "--snapshot-every",
        type=_positive_int,
        default=None,
        metavar="N",
        help="snapshot after every N applied batches (default 1; "
        "requires --snapshot)",
    )

    recover = sub.add_parser(
        "recover",
        help="rebuild a streaming session from a snapshot plus WAL tail",
    )
    recover.add_argument("--snapshot", required=True, help="snapshot JSON path")
    recover.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help="delta WAL to replay on top of the snapshot (records already "
        "captured by the snapshot are skipped; a torn final record is "
        "dropped and reported)",
    )
    recover.add_argument(
        "--match",
        default=None,
        help="after recovery, print this registered query's table (defaults "
        "to reporting the recovered queries without printing tables)",
    )
    recover.add_argument("--limit", type=int, default=25, help="rows to print (0 = all)")
    recover.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="PATH",
        help="save the recovered graph as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="run the always-on query service (JSON lines over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="listen address")
    serve.add_argument(
        "--port",
        type=_nonnegative_int,
        default=0,
        help="listen port (0 = pick a free port; the bound port is printed)",
    )
    serve.add_argument(
        "--graph",
        default=None,
        metavar="PATH",
        help="graph JSON to keep resident as 'default' (default: the "
        "Figure-1 running example)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="attach a compiled repro-index artifact as the resident graph "
        "instead of loading --graph; restarts skip index compilation "
        "(an existing --snapshot still wins)",
    )
    serve.add_argument(
        "--name",
        default="default",
        help="name the resident graph is addressed by (default: 'default')",
    )
    serve.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        help="dataflow workers per query (0 = one per CPU core)",
    )
    serve.add_argument(
        "--backend",
        choices=("serial",) + DataflowEngine.BACKENDS,
        default="thread",
        help="dataflow parallel backend for resident engines ('serial' "
        "rejects --workers > 1)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=_positive_int,
        default=4,
        help="heavy requests executing at once (default 4)",
    )
    serve.add_argument(
        "--max-queue",
        type=_nonnegative_int,
        default=16,
        help="heavy requests allowed to wait before Overloaded rejection "
        "(default 16; 0 = reject as soon as all slots are busy)",
    )
    serve.add_argument(
        "--plan-cache",
        type=_positive_int,
        default=128,
        metavar="N",
        help="compiled-plan cache capacity per graph (default 128)",
    )
    serve.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help="append applied delta batches to a checksummed WAL; on "
        "restart the WAL tail is replayed so the resident graph catches up",
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="periodically write an atomic session snapshot; on restart "
        "an existing snapshot (plus the WAL tail) is recovered instead of "
        "re-loading --graph",
    )
    serve.add_argument(
        "--snapshot-every",
        type=_positive_int,
        default=None,
        metavar="N",
        help="snapshot after every N applied batches (default 1; "
        "requires --snapshot)",
    )
    serve.add_argument(
        "--register",
        action="append",
        default=None,
        metavar="QUERY",
        help="register a continuously-answered query at startup (repeatable; "
        "a MATCH clause or a paper-query name Q1..Q12)",
    )
    serve.add_argument(
        "--standby-of",
        default=None,
        metavar="HOST:PORT",
        help="run as a read-only hot standby of the primary at HOST:PORT: "
        "subscribe to its WAL stream, apply shipped deltas, refuse writes "
        "with NotPrimary, and promote on sustained loss of the primary",
    )
    serve.add_argument(
        "--drain-timeout",
        type=_positive_float,
        default=10.0,
        metavar="SECONDS",
        help="graceful-shutdown budget: in-flight requests get this long to "
        "finish and answer before sockets close (default 10)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="close client connections idle for this long, answering a "
        "ProtocolError close frame first (default: never)",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=_positive_float,
        default=1.0,
        metavar="SECONDS",
        help="replication heartbeat cadence on idle subscriptions (default 1)",
    )
    serve.add_argument(
        "--failover-after",
        type=_positive_float,
        default=5.0,
        metavar="SECONDS",
        help="a standby promotes itself after this long without contact "
        "with the primary (default 5)",
    )

    compile_cmd = sub.add_parser(
        "compile",
        help="compile a graph's index into a persistent repro-index artifact",
    )
    compile_cmd.add_argument(
        "--graph",
        default=None,
        metavar="PATH",
        help="graph JSON to compile (default: the Figure-1 running example)",
    )
    compile_cmd.add_argument(
        "--output", "-o", required=True, help="artifact (or manifest) output path"
    )
    compile_cmd.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="N",
        help="write a sharded store: a manifest at --output plus a head "
        "artifact and N degree-balanced shard artifacts next to it",
    )
    compile_cmd.add_argument(
        "--verify",
        action="store_true",
        help="re-attach the written store and checksum every section "
        "before reporting success",
    )

    example = sub.add_parser("example", help="write the Figure-1 running example as JSON")
    example.add_argument("--output", "-o", required=True, help="output JSON path")

    return parser


def _load_graph(path: Optional[str]):
    if path is None:
        return contact_tracing_example()
    return load_json(path)


def _resolve_query(text: str) -> str:
    if text in PAPER_QUERIES:
        return PAPER_QUERIES[text].text
    return text


def _cmd_generate(args: argparse.Namespace) -> int:
    config = ContactTracingConfig(
        trajectory=TrajectoryConfig(
            num_persons=args.persons,
            num_locations=args.locations,
            num_rooms=args.rooms,
            num_windows=args.windows,
            seed=args.seed,
        ),
        positivity_rate=args.positivity,
        seed=args.seed,
    )
    if args.stream_batches is not None:
        if args.stream_output is None:
            print(
                "error: --stream-batches requires --stream-output",
                file=sys.stderr,
            )
            return 2
        from repro.datagen.streaming import contact_tracing_stream

        stream = contact_tracing_stream(
            config,
            num_batches=args.stream_batches,
            initial_fraction=args.stream_initial,
        )
        save_json(stream.initial, args.output)
        with open(args.stream_output, "w", encoding="utf-8") as handle:
            for batch in stream.batches:
                handle.write(json.dumps(batch.to_json_dict()) + "\n")
        print(
            f"wrote {args.output}: initial prefix with "
            f"{stream.initial.num_nodes()} nodes, {stream.initial.num_edges()} "
            f"edges ({stream.initial_events}/{stream.total_events} events)"
        )
        print(
            f"wrote {args.stream_output}: {len(stream.batches)} delta batches "
            f"(replay with: repro query <MATCH> --graph {args.output} "
            f"--stream {args.stream_output})"
        )
        return 0
    graph = generate_contact_tracing_graph(config)
    save_json(graph, args.output)
    stats = graph_statistics(graph)
    print(
        f"wrote {args.output}: {stats.num_nodes} nodes, {stats.num_edges} edges, "
        f"{stats.num_temporal_nodes} temporal nodes, {stats.num_temporal_edges} temporal edges"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_json(args.graph)
    stats = graph_statistics(graph).as_row()
    width = max(len(key) for key in stats)
    for key, value in stats.items():
        print(f"{key.ljust(width)}  {value}")
    return 0


def _print_families(families, limit: Optional[int]) -> None:
    """Render coalesced ``(bindings, IntervalSet)`` families, one per line."""
    ordered = sorted(
        families, key=lambda family: tuple(repr(obj) for _name, obj in family[0])
    )
    shown = ordered if limit is None else ordered[:limit]
    for bindings, times in shown:
        bound = ", ".join(f"{name}={obj}" for name, obj in bindings) or "<match>"
        spans = " u ".join(f"[{iv.start},{iv.end}]" for iv in times)
        print(f"{bound} @ {spans}")
    if limit is not None and len(ordered) > limit:
        print(f"... ({len(ordered) - limit} more families)")


def _print_explain(plan: dict) -> None:
    """Render :meth:`DataflowEngine.explain` output, one ``#`` line each."""
    print(
        f"# plan: backend={plan['backend']} "
        f"(effective: {plan['effective_backend']}), workers={plan['workers']}, "
        f"output={plan['output_mode']}"
    )
    kernel_line = (
        f"# plan: kernel={plan['kernel']} "
        f"(effective: {plan['effective_kernel']})"
    )
    if plan["kernel_fallback"]:
        kernel_line += f" — fallback: {plan['kernel_fallback']}"
    print(kernel_line)
    print(
        f"# plan: {plan['seed_rows']} seed rows, {plan['chain_steps']} chain steps, "
        f"{len(plan['chunks'])} chunk(s)"
    )
    for position, chunk in enumerate(plan["chunks"]):
        print(
            f"# plan: chunk {position}: {chunk['seeds']} seeds, "
            f"weight {chunk['weight']}"
        )


def _run_stream(
    engine: DataflowEngine,
    text: str,
    path: str,
    wal: Optional[str] = None,
    snapshot: Optional[str] = None,
    snapshot_every: int = 1,
) -> None:
    """The --stream loop: apply each batch, report the output drift.

    Every line is validated by :func:`repro.streaming.read_delta_stream`
    *before* it touches the engine, and application failures (e.g. an
    out-of-order sequence) are re-raised as
    :class:`~repro.errors.StreamFormatError` with the file/line/sequence
    context attached — the engine state stays exactly as the last good
    batch left it.  With ``wal`` / ``snapshot``, applied batches are
    durably logged and the session periodically checkpointed, so a crash
    mid-stream is recoverable via ``repro recover``.
    """
    from repro.errors import StreamFormatError
    from repro.streaming.reader import read_delta_stream

    result = engine.match_with_stats(text)
    size = result.output_size
    session = engine.streaming_session()
    if wal is not None:
        session.attach_wal(wal)
    if snapshot is not None:
        session.configure_snapshots(snapshot, every=snapshot_every)
    durability = (
        f", wal {wal}" if wal else ""
    ) + (f", snapshots {snapshot} (every {snapshot_every})" if snapshot else "")
    print(f"# stream: initial graph {engine.graph}, output size {size}{durability}")
    batch_number = 0
    for number, batch in read_delta_stream(path):
        batch_number += 1
        try:
            applied = engine.apply_delta(batch)
        except ReproError as error:
            raise StreamFormatError(
                f"{path}:{number}: {error}",
                path=path,
                line=number,
                sequence=batch.sequence,
            ) from error
        new_size = len(engine.match(text))
        sequence = "-" if applied.sequence is None else str(applied.sequence)
        horizon = (
            f", horizon -> {engine.graph.domain.end}"
            if applied.horizon_advanced
            else ""
        )
        print(
            f"# batch {batch_number} (seq {sequence}): +{applied.new_nodes} nodes "
            f"+{applied.new_edges} edges ~{applied.touched_objects} touched"
            f"{horizon} | seeds re-derived {applied.affected_seeds}"
            f"/{applied.total_seeds} | output {new_size} ({new_size - size:+d})"
        )
        size = new_size
    if session.wal is not None:
        session.wal.sync()


def _cmd_query(args: argparse.Namespace) -> int:
    # Pure argument validation comes first, before any graph loading.
    if args.engine != "dataflow" and (
        args.backend != "thread"
        or args.kernel != "interpreted"
        or args.explain
        or args.stream
        or args.deadline is not None
        or args.retries is not None
        or args.store is not None
    ):
        print(
            "error: --backend, --kernel, --explain, --stream, --deadline, "
            "--retries and --store apply to the dataflow engine only "
            f"(got --engine {args.engine})",
            file=sys.stderr,
        )
        return 2
    if args.store is not None and args.graph is not None:
        print(
            "error: --store and --graph are mutually exclusive (the artifact "
            "already contains the graph)",
            file=sys.stderr,
        )
        return 2
    if (args.wal or args.snapshot) and not args.stream:
        print(
            "error: --wal and --snapshot require --stream (they make the "
            "streaming session durable)",
            file=sys.stderr,
        )
        return 2
    if args.snapshot_every is not None and not args.snapshot:
        print("error: --snapshot-every requires --snapshot", file=sys.stderr)
        return 2
    if args.backend == "serial" and args.workers > 1:
        print(
            f"error: --backend serial is single-threaded and contradicts "
            f"--workers {args.workers} (drop one of the two)",
            file=sys.stderr,
        )
        return 2
    if args.store is not None:
        from repro.store import attach

        graph = attach(args.store).graph
    else:
        graph = _load_graph(args.graph)
    text = _resolve_query(args.match)
    limit = None if args.limit == 0 else args.limit
    if args.engine == "dataflow":
        retry = None
        if args.retries is not None:
            from repro.resilience import RetryPolicy

            retry = RetryPolicy(retries=args.retries)
        serial = args.backend == "serial"
        engine = DataflowEngine(
            graph,
            workers=1 if serial else args.workers,
            use_coalesced=not args.legacy_frontier,
            parallel_backend="thread" if serial else args.backend,
            incremental=args.stream is not None,
            deadline_seconds=args.deadline,
            retry=retry,
            kernel=args.kernel,
        )
        if args.explain:
            _print_explain(engine.explain(text))
        if args.stream:
            try:
                _run_stream(
                    engine,
                    text,
                    args.stream,
                    wal=args.wal,
                    snapshot=args.snapshot,
                    snapshot_every=args.snapshot_every or 1,
                )
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
    else:
        engine = ReferenceEngine(
            graph, use_intervals=(args.engine == "reference-intervals")
        )
    if args.intervals:
        families = engine.match_intervals(text)
        if args.stats:
            intervals = sum(len(times) for _bindings, times in families)
            points = sum(times.total_points() for _bindings, times in families)
            print(
                f"# {len(families)} families, {intervals} intervals, "
                f"{points} points"
            )
        _print_families(families, limit)
        return 0
    if args.engine == "dataflow":
        result = engine.match_with_stats(text)
        table = result.table
        if result.degradation is not None:
            # A retry policy had to step in: surface the audit trail so
            # operators know the answer is real but the backend wasn't
            # the configured one.
            report = result.degradation
            print(
                f"# resilience: {report['retries']} failed attempt(s), "
                f"backend {report['configured_backend']} -> "
                f"{report['final_backend']}"
                + (" (degraded)" if report["degraded"] else " (recovered)")
            )
            for record in report["failures"]:
                print(
                    f"# resilience: attempt {record['attempt']} on "
                    f"{record['backend']}: {record['error_type']} "
                    f"(backoff {record['delay']}s)"
                )
        if args.stats:
            frontier_mode = "legacy rows" if args.legacy_frontier else "coalesced"
            print(
                f"# interval time {result.interval_seconds:.4f}s, "
                f"total time {result.total_seconds:.4f}s, "
                f"output size {result.output_size}"
            )
            print(
                f"# frontier: {frontier_mode}, {result.frontier_rows} rows, "
                f"{result.rows_merged} merged"
            )
            if isinstance(table, IntervalBindingTable):
                print(
                    f"# output kept interval-native: {table.num_families()} "
                    f"families, {table.num_intervals()} intervals "
                    "(rows expand lazily)"
                )
    else:
        table = engine.match(text)
        if args.stats:
            print(f"# output size {len(table)}")
    print(table.pretty(limit=limit))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Rebuild a streaming session from snapshot + WAL and report on it."""
    from repro.resilience import recover

    session, report = recover(args.snapshot, args.wal)
    print(f"# {report.summary()}")
    for name in report.queries:
        table = session.table(name)
        print(f"# query {name!r}: output size {len(table)}")
    if args.output is not None:
        save_json(session.graph, args.output)
        print(f"# recovered graph saved to {args.output}")
    if args.match is not None:
        text = _resolve_query(args.match)
        name = text if text in session.query_names() else session.register(text)
        limit = None if args.limit == 0 else args.limit
        print(session.table(name).pretty(limit=limit))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on query service until a shutdown request."""
    # The same flag contract as 'query': contradictory combinations are
    # rejected up front with an actionable message.
    if args.backend == "serial" and args.workers > 1:
        print(
            f"error: --backend serial is single-threaded and contradicts "
            f"--workers {args.workers} (drop one of the two)",
            file=sys.stderr,
        )
        return 2
    if args.snapshot_every is not None and not args.snapshot:
        print("error: --snapshot-every requires --snapshot", file=sys.stderr)
        return 2
    if args.store is not None and args.graph is not None:
        print(
            "error: --store and --graph are mutually exclusive (the artifact "
            "already contains the graph)",
            file=sys.stderr,
        )
        return 2
    standby_of = None
    if args.standby_of is not None:
        host_part, sep, port_part = args.standby_of.rpartition(":")
        try:
            standby_of = (host_part, int(port_part))
        except ValueError:
            sep = ""
        if not sep or not host_part:
            print(
                f"error: --standby-of expects HOST:PORT, got {args.standby_of!r}",
                file=sys.stderr,
            )
            return 2
        if args.failover_after <= args.heartbeat_interval:
            print(
                f"error: --failover-after ({args.failover_after:g}s) must exceed "
                f"--heartbeat-interval ({args.heartbeat_interval:g}s), or every "
                "quiet heartbeat gap would trigger a promotion",
                file=sys.stderr,
            )
            return 2
    from repro.server import ServerState
    from repro.server.service import serve as run_service

    state = ServerState(
        workers=args.workers,
        backend=args.backend,
        plan_capacity=args.plan_cache,
    )
    recovery = state.add_graph(
        args.name,
        args.graph,
        wal=args.wal,
        snapshot=args.snapshot,
        snapshot_every=args.snapshot_every or 1,
        store=args.store,
    )
    if recovery is not None:
        print(
            f"# recovered {args.name!r} from {args.snapshot}: "
            f"{recovery['replayed']} WAL record(s) replayed, "
            f"{recovery['skipped']} skipped",
            flush=True,
        )
    host = state.host(args.name)
    for text in args.register or ():
        registered = host.register(text)
        print(f"# registered {registered['result']['name']!r}", flush=True)

    def on_listening(server) -> None:
        # Subprocess harnesses (tests, benchmarks) parse this line to
        # learn the bound port, so keep its shape stable and flush it.
        print(f"listening on {server.host}:{server.port}", flush=True)
        if server.standby_of is not None:
            print(f"# standby of {server.primary_address}", flush=True)

    run_service(
        state,
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        standby_of=standby_of,
        drain_timeout=args.drain_timeout,
        idle_timeout=args.idle_timeout,
        heartbeat_interval=args.heartbeat_interval,
        failover_after=args.failover_after,
        on_listening=on_listening,
    )
    print("# server stopped", flush=True)
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    """Compile a graph's index into a persistent artifact (or sharded store)."""
    from repro.store import attach, compile_graph

    graph = _load_graph(args.graph)
    report = compile_graph(graph, args.output, shards=args.shards)
    shape = (
        f"{report['shard_count']} shard(s) + head behind manifest"
        if report["sharded"]
        else "single artifact"
    )
    print(
        f"wrote {args.output}: {shape}, {report['objects']} objects "
        f"({report['nodes']} nodes), {report['bytes']} bytes, "
        f"token {report['token']}"
    )
    if args.verify:
        attachment = attach(args.output)
        try:
            attachment.verify()
        finally:
            attachment.close()
        print("# verify: every section passed its checksum")
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    save_json(contact_tracing_example(), args.output)
    print(f"wrote the Figure-1 running example to {args.output}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "query": _cmd_query,
    "recover": _cmd_recover,
    "serve": _cmd_serve,
    "compile": _cmd_compile,
    "example": _cmd_example,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro`` (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
