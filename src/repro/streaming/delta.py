"""Append-only delta batches over interval-timestamped TPGs.

The interval representation makes temporal extension cheap to *store*:
appending an edge, extending an existence family or advancing the time
horizon each touch a bounded set of interval families.  A
:class:`DeltaBatch` captures exactly those update forms:

* ``add_node`` / ``add_edge`` — new objects with initial existence;
* ``add_existence`` — extend the existence family of an object;
* ``set_property`` — assign a property value over an interval;
* ``extend_domain`` — advance the horizon ``Ω`` (append-only).

:func:`apply_delta` validates the whole batch against the target graph
*before* mutating anything — a rejected batch leaves the graph
untouched — and returns a :class:`DeltaEffects` record describing the
dirty set: which objects changed, which times they changed at, and
whether the horizon moved.  The effects drive the incremental index
maintenance (:meth:`repro.perf.graph_index.GraphIndex.apply_delta`) and
the streaming engine's affected-seed selection
(:mod:`repro.streaming.engine`).

Batches carry an optional monotonically increasing ``sequence`` number;
ordering is enforced by :class:`~repro.streaming.engine.StreamingEngine`,
not here, because a bare graph has no stream position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Optional

from repro.errors import GraphIntegrityError, UnknownObjectError
from repro.model.itpg import IntervalTPG
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet, IntervalSetAccumulator
from repro.temporal.valued import ValuedIntervalSet

ObjectId = Hashable


@dataclass(frozen=True)
class NodeAdd:
    """A new node with its label and initial existence intervals."""

    node_id: ObjectId
    label: str
    existence: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class EdgeAdd:
    """A new directed edge with its endpoints and initial existence."""

    edge_id: ObjectId
    label: str
    source: ObjectId
    target: ObjectId
    existence: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class ExistenceAdd:
    """Extend the existence family of an existing (or batch-new) object."""

    object_id: ObjectId
    start: int
    end: int


@dataclass(frozen=True)
class PropertySet:
    """Assign ``value`` to a property during ``[start, end]``."""

    object_id: ObjectId
    name: str
    value: Hashable
    start: int
    end: int


class DeltaBatch:
    """One batch of append-only updates, built incrementally.

    The builder methods return ``self`` so batches can be written
    fluently::

        batch = (
            DeltaBatch(sequence=3)
            .add_node("p9", "Person", [(40, 45)])
            .add_edge("m7", "meets", "p9", "p2", [(41, 43)])
            .set_property("p9", "risk", "low", 40, 45)
        )

    Within a batch, new edges may reference nodes added earlier in the
    same batch, and existence/property records may target batch-new
    objects — the batch is validated and applied as one atomic unit by
    :func:`apply_delta`.
    """

    __slots__ = ("sequence", "_horizon", "_nodes", "_edges", "_existence", "_properties")

    def __init__(self, sequence: Optional[int] = None) -> None:
        self.sequence = sequence
        self._horizon: Optional[int] = None
        self._nodes: list[NodeAdd] = []
        self._edges: list[EdgeAdd] = []
        self._existence: list[ExistenceAdd] = []
        self._properties: list[PropertySet] = []

    # ------------------------------------------------------------------ #
    # Builder API
    # ------------------------------------------------------------------ #
    def extend_domain(self, new_end: int) -> "DeltaBatch":
        """Advance the time-domain horizon to end at ``new_end``."""
        new_end = int(new_end)
        if self._horizon is not None and new_end < self._horizon:
            raise GraphIntegrityError(
                f"batch horizon cannot move backwards ({self._horizon} -> {new_end})"
            )
        self._horizon = new_end
        return self

    def add_node(
        self,
        node_id: ObjectId,
        label: str,
        existence: Iterable[tuple[int, int]] = (),
    ) -> "DeltaBatch":
        self._nodes.append(
            NodeAdd(node_id, label, tuple((int(a), int(b)) for a, b in existence))
        )
        return self

    def add_edge(
        self,
        edge_id: ObjectId,
        label: str,
        source: ObjectId,
        target: ObjectId,
        existence: Iterable[tuple[int, int]] = (),
    ) -> "DeltaBatch":
        self._edges.append(
            EdgeAdd(
                edge_id, label, source, target,
                tuple((int(a), int(b)) for a, b in existence),
            )
        )
        return self

    def add_existence(self, object_id: ObjectId, start: int, end: int) -> "DeltaBatch":
        self._existence.append(ExistenceAdd(object_id, int(start), int(end)))
        return self

    def set_property(
        self, object_id: ObjectId, name: str, value: Hashable, start: int, end: int
    ) -> "DeltaBatch":
        self._properties.append(
            PropertySet(object_id, name, value, int(start), int(end))
        )
        return self

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def horizon(self) -> Optional[int]:
        return self._horizon

    @property
    def nodes(self) -> tuple[NodeAdd, ...]:
        return tuple(self._nodes)

    @property
    def edges(self) -> tuple[EdgeAdd, ...]:
        return tuple(self._edges)

    @property
    def existence(self) -> tuple[ExistenceAdd, ...]:
        return tuple(self._existence)

    @property
    def properties(self) -> tuple[PropertySet, ...]:
        return tuple(self._properties)

    def is_empty(self) -> bool:
        """True when the batch carries no updates (a horizon move is an update)."""
        return not (
            self._nodes or self._edges or self._existence or self._properties
            or self._horizon is not None
        )

    def __repr__(self) -> str:
        parts = [
            f"nodes={len(self._nodes)}",
            f"edges={len(self._edges)}",
            f"existence={len(self._existence)}",
            f"properties={len(self._properties)}",
        ]
        if self._horizon is not None:
            parts.append(f"horizon={self._horizon}")
        if self.sequence is not None:
            parts.insert(0, f"seq={self.sequence}")
        return f"DeltaBatch({', '.join(parts)})"

    # ------------------------------------------------------------------ #
    # JSON wire format (CLI --stream)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {}
        if self.sequence is not None:
            payload["sequence"] = self.sequence
        if self._horizon is not None:
            payload["horizon"] = self._horizon
        if self._nodes:
            payload["nodes"] = [
                {"id": n.node_id, "label": n.label, "existence": [list(p) for p in n.existence]}
                for n in self._nodes
            ]
        if self._edges:
            payload["edges"] = [
                {
                    "id": e.edge_id, "label": e.label, "source": e.source,
                    "target": e.target, "existence": [list(p) for p in e.existence],
                }
                for e in self._edges
            ]
        if self._existence:
            payload["existence"] = [
                {"id": x.object_id, "start": x.start, "end": x.end}
                for x in self._existence
            ]
        if self._properties:
            payload["properties"] = [
                {
                    "id": p.object_id, "name": p.name, "value": p.value,
                    "start": p.start, "end": p.end,
                }
                for p in self._properties
            ]
        return payload

    @staticmethod
    def from_json_dict(payload: dict[str, Any]) -> "DeltaBatch":
        batch = DeltaBatch(sequence=payload.get("sequence"))
        if payload.get("horizon") is not None:
            batch.extend_domain(payload["horizon"])
        for n in payload.get("nodes", ()):
            batch.add_node(n["id"], n["label"], [tuple(p) for p in n.get("existence", ())])
        for e in payload.get("edges", ()):
            batch.add_edge(
                e["id"], e["label"], e["source"], e["target"],
                [tuple(p) for p in e.get("existence", ())],
            )
        for x in payload.get("existence", ()):
            batch.add_existence(x["id"], x["start"], x["end"])
        for p in payload.get("properties", ()):
            batch.set_property(p["id"], p["name"], p["value"], p["start"], p["end"])
        return batch


@dataclass(frozen=True)
class DeltaEffects:
    """What a successfully applied batch changed — the *dirty set*.

    ``touched`` holds every object whose existence family, property
    families or adjacency changed (including the endpoints of new
    edges); ``dirty`` adds the new objects themselves.  ``dirty_times``
    is the coalesced union of every interval the batch wrote — the
    temporal footprint the streaming engine dilates by each query's
    temporal radius to decide which cached seeds can be affected.
    """

    new_nodes: tuple[ObjectId, ...]
    new_edges: tuple[ObjectId, ...]
    touched: frozenset[ObjectId]
    dirty: frozenset[ObjectId]
    dirty_times: IntervalSet
    horizon_advanced: bool
    sequence: Optional[int] = None

    def is_empty(self) -> bool:
        return not self.dirty and not self.horizon_advanced


def apply_delta(graph: IntervalTPG, batch: DeltaBatch) -> DeltaEffects:
    """Validate ``batch`` against ``graph``, then apply it atomically.

    Validation covers everything :meth:`IntervalTPG.validate` would
    reject *after* the batch — unused ids, known endpoints, intervals
    inside the (possibly advanced) domain, edge existence contained in
    both endpoints' prospective existence, property support contained in
    the object's prospective existence, and value-conflicting property
    overlaps — before the first mutation, so a rejected batch leaves the
    graph exactly as it was.
    """
    domain = graph.domain
    new_end = domain.end
    if batch.horizon is not None:
        if batch.horizon < domain.end:
            raise GraphIntegrityError(
                f"batch horizon {batch.horizon} is before the current domain end "
                f"{domain.end}: streaming growth is append-only"
            )
        new_end = batch.horizon
    prospective_domain = Interval(domain.start, new_end)

    # ---------------- validation pass (no mutation) ---------------- #
    batch_nodes: dict[ObjectId, NodeAdd] = {}
    batch_edges: dict[ObjectId, EdgeAdd] = {}
    prospective_existence: dict[ObjectId, IntervalSet] = {}
    dirty_times = IntervalSetAccumulator()

    def _interval(start: int, end: int, what: str) -> Interval:
        interval = Interval(start, end)
        if not interval.during(prospective_domain):
            raise GraphIntegrityError(
                f"{what} interval {interval} lies outside the temporal domain "
                f"{prospective_domain}"
                + (
                    ""
                    if batch.horizon is not None
                    else " (advance the horizon with extend_domain first)"
                )
            )
        dirty_times.add_interval(interval)
        return interval

    def _existence_of(object_id: ObjectId) -> IntervalSet:
        found = prospective_existence.get(object_id)
        if found is not None:
            return found
        if graph.has_object(object_id):
            found = graph.existence(object_id)
        elif object_id in batch_nodes or object_id in batch_edges:
            found = IntervalSet.empty()
        else:
            raise UnknownObjectError(f"unknown object {object_id!r} in delta batch")
        prospective_existence[object_id] = found
        return found

    for node in batch.nodes:
        if graph.has_object(node.node_id) or node.node_id in batch_nodes or node.node_id in batch_edges:
            raise GraphIntegrityError(f"object id {node.node_id!r} already in use")
        batch_nodes[node.node_id] = node
        prospective_existence[node.node_id] = IntervalSet(
            _interval(a, b, f"existence of new node {node.node_id!r}")
            for a, b in node.existence
        )
    for edge in batch.edges:
        if graph.has_object(edge.edge_id) or edge.edge_id in batch_nodes or edge.edge_id in batch_edges:
            raise GraphIntegrityError(f"object id {edge.edge_id!r} already in use")
        for endpoint in (edge.source, edge.target):
            if not (graph.is_node(endpoint) if graph.has_object(endpoint) else endpoint in batch_nodes):
                raise UnknownObjectError(
                    f"edge {edge.edge_id!r} references unknown node {endpoint!r}"
                )
        batch_edges[edge.edge_id] = edge
        prospective_existence[edge.edge_id] = IntervalSet(
            _interval(a, b, f"existence of new edge {edge.edge_id!r}")
            for a, b in edge.existence
        )
    for extend in batch.existence:
        interval = _interval(
            extend.start, extend.end, f"existence extension of {extend.object_id!r}"
        )
        prospective_existence[extend.object_id] = _existence_of(extend.object_id).union(
            IntervalSet((interval,))
        )

    # Edge containment: every edge whose own or endpoint existence the
    # batch touches must end up inside both endpoints' families.
    def _endpoints(edge_id: ObjectId) -> tuple[ObjectId, ObjectId]:
        added = batch_edges.get(edge_id)
        if added is not None:
            return added.source, added.target
        return graph.endpoints(edge_id)

    edges_to_check: set[ObjectId] = set(batch_edges)
    for object_id in prospective_existence:
        if object_id in batch_edges:
            continue
        if graph.has_object(object_id) and graph.is_edge(object_id):
            edges_to_check.add(object_id)
    for edge_id in edges_to_check:
        edge_existence = _existence_of(edge_id)
        src, tgt = _endpoints(edge_id)
        for endpoint in (src, tgt):
            if not edge_existence.is_subset_of(_existence_of(endpoint)):
                raise GraphIntegrityError(
                    f"edge {edge_id!r} would exist outside the existence of its "
                    f"endpoint {endpoint!r}"
                )

    # Property merges: simulate the ValuedIntervalSet merge now so that a
    # value conflict (InvalidIntervalError) or support violation surfaces
    # before any mutation.
    prospective_props: dict[tuple[ObjectId, str], ValuedIntervalSet] = {}
    for prop in batch.properties:
        interval = _interval(
            prop.start, prop.end, f"property {prop.name!r} of {prop.object_id!r}"
        )
        key = (prop.object_id, prop.name)
        current = prospective_props.get(key)
        if current is None:
            if graph.has_object(prop.object_id):
                current = graph.property_family(prop.object_id, prop.name)
            elif prop.object_id in batch_nodes or prop.object_id in batch_edges:
                current = ValuedIntervalSet.empty()
            else:
                raise UnknownObjectError(
                    f"unknown object {prop.object_id!r} in delta batch"
                )
        prospective_props[key] = current.merge(
            ValuedIntervalSet.constant(prop.value, interval.start, interval.end)
        )
    for (object_id, name), family in prospective_props.items():
        if not family.support().is_subset_of(_existence_of(object_id)):
            raise GraphIntegrityError(
                f"property {name!r} of {object_id!r} would be defined outside "
                "its existence"
            )

    # ---------------------- commit (cannot fail) ---------------------- #
    # The graph is about to change in place: any cached parallel
    # execution plan (pickled payload + worker-cache token) describes the
    # pre-delta graph and must not survive the commit, or warm process
    # workers would keep answering from the stale graph.  (Local import:
    # repro.parallel pulls in the dataflow machinery, which plain delta
    # application should not depend on at import time.)
    from repro.parallel.plan import invalidate_plans

    invalidate_plans(graph)
    horizon_advanced = new_end > domain.end
    if horizon_advanced:
        graph.extend_domain(new_end)
    for node in batch.nodes:
        graph.add_node(node.node_id, node.label, node.existence)
    for edge in batch.edges:
        graph.add_edge(edge.edge_id, edge.label, edge.source, edge.target, edge.existence)
    for extend in batch.existence:
        graph.add_existence(extend.object_id, extend.start, extend.end)
    for prop in batch.properties:
        graph.set_property(prop.object_id, prop.name, prop.value, prop.start, prop.end)

    touched: set[ObjectId] = set()
    for extend in batch.existence:
        if extend.object_id not in batch_nodes and extend.object_id not in batch_edges:
            touched.add(extend.object_id)
    for prop in batch.properties:
        if prop.object_id not in batch_nodes and prop.object_id not in batch_edges:
            touched.add(prop.object_id)
    for edge in batch.edges:
        # Adjacency of both endpoints changed, whether or not their
        # interval families did.
        for endpoint in (edge.source, edge.target):
            if endpoint not in batch_nodes:
                touched.add(endpoint)
    new_nodes = tuple(batch_nodes)
    new_edges = tuple(batch_edges)
    return DeltaEffects(
        new_nodes=new_nodes,
        new_edges=new_edges,
        touched=frozenset(touched),
        dirty=frozenset(touched) | frozenset(new_nodes) | frozenset(new_edges),
        dirty_times=dirty_times.build(),
        horizon_advanced=horizon_advanced,
        sequence=batch.sequence,
    )
