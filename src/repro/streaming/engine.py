"""Incremental evaluation of MATCH queries over growing time domains.

:class:`StreamingEngine` keeps a set of registered queries continuously
answered while :class:`~repro.streaming.delta.DeltaBatch` updates are
applied to the graph.  The central idea is *per-seed result caching*:

* Registration evaluates the query once, seed by seed, and caches each
  seed's contribution — the coalesced ``(bindings, times)`` families (or
  point tuples, for group-spanning outputs) derived from the chain run
  anchored at that seed.  The merged answer is the per-binding union of
  all contributions, which is exactly what the batch engine's global
  family merge computes.
* :meth:`apply` applies the batch atomically, maintains the shared
  :class:`~repro.perf.graph_index.GraphIndex` in place, and then
  re-derives **only the affected seeds**: seeds inside the dirty set's
  structural closure (radius = the chain's structural move count) whose
  cached seed times intersect the delta's temporal footprint dilated by
  the chain's temporal radius.  Everything outside that ball provably
  cannot have changed — a chain run reads only objects within its
  structural radius of the seed, and can only look at times within its
  temporal radius of a seed time.
* Advancing the time horizon recomputes every seed of every query:
  condition satisfaction is clamped to the domain (``¬φ``, label tests,
  ``time < c`` are all domain-wide), so no per-seed surgery is sound
  there.  The common streaming shape — appends inside a fixed study
  horizon — stays on the incremental path.

Batches carry an optional ``sequence`` number; applying them out of
order raises :class:`~repro.errors.EvaluationError` before anything is
mutated.  Correctness of the whole scheme is pinned by the streaming
differential oracle (``tests/test_streaming_oracle.py``): after every
batch the incremental answer must equal a cold evaluation on a pristine
copy of the materialized graph, across the fuzz-oracle engine configs.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Hashable, Optional, Union as TypingUnion

from repro.dataflow.frontier import Group, Row
from repro.dataflow.steps import (
    ChainStep,
    chain_structural_radius,
    chain_temporal_radius,
)
from repro.errors import EvaluationError
from repro.eval.bindings import BindingTable, IntervalBindingTable
from repro.lang.parser import MatchQuery
from repro.lang.translate import CompiledMatch, compile_match
from repro.model.itpg import IntervalTPG
from repro.streaming.delta import DeltaBatch, DeltaEffects, apply_delta
from repro.temporal.intervalset import IntervalSet, IntervalSetAccumulator

ObjectId = Hashable
QueryLike = TypingUnion[str, MatchQuery, CompiledMatch]
#: One seed's cached contribution: interval families or point tuples.
Contribution = TypingUnion[list, tuple]


@dataclass
class _QueryState:
    """Cached evaluation state of one registered query."""

    name: str
    chain: tuple[ChainStep, ...]
    variables: tuple[str, ...]
    mode: str  # "families" | "points"
    struct_radius: int
    temporal_radius: Optional[int]
    #: The MATCH text the query was registered from (``None`` when it
    #: arrived pre-compiled) — snapshots need it to re-register.
    text: Optional[str] = None
    #: The chain after any leading test absorbed into the seed table
    #: (fixed at registration — absorption depends only on chain shape).
    rest: tuple[ChainStep, ...] = ()
    #: Times of *every* current seed row (affected-seed time filter).
    seed_times: dict[ObjectId, IntervalSet] = field(default_factory=dict)
    #: Non-empty per-seed outputs (families or point tuples).
    contributions: dict[ObjectId, Contribution] = field(default_factory=dict)
    #: Merged output, rebuilt lazily after contributions change.
    merged: Optional[TypingUnion[BindingTable, IntervalBindingTable]] = None


@dataclass(frozen=True)
class QueryUpdate:
    """Per-query outcome of one applied batch."""

    name: str
    affected_seeds: int
    total_seeds: int
    recomputed_all: bool


@dataclass(frozen=True)
class ApplyResult:
    """Outcome of :meth:`StreamingEngine.apply` for one batch."""

    sequence: Optional[int]
    new_nodes: int
    new_edges: int
    touched_objects: int
    horizon_advanced: bool
    queries: tuple[QueryUpdate, ...]
    seconds: float

    @property
    def affected_seeds(self) -> int:
        return sum(update.affected_seeds for update in self.queries)

    @property
    def total_seeds(self) -> int:
        return sum(update.total_seeds for update in self.queries)


class StreamingEngine:
    """Continuously answered MATCH queries over a growing ITPG.

    Either wraps a fresh
    :class:`~repro.dataflow.executor.DataflowEngine` built for ``graph``
    or (``engine=...``) drives an existing one — that is how
    ``DataflowEngine(..., incremental=True)`` attaches its session.  The
    parallel backends are irrelevant here: per-seed runs are sequential
    by construction (each one processes a single-row frontier).
    """

    def __init__(
        self,
        graph: Optional[IntervalTPG] = None,
        *,
        engine=None,
        use_index: bool = True,
        use_coalesced: bool = True,
    ) -> None:
        if engine is None:
            if graph is None:
                raise ValueError("StreamingEngine needs a graph or an engine")
            from repro.dataflow.executor import DataflowEngine

            engine = DataflowEngine(
                graph, use_index=use_index, use_coalesced=use_coalesced
            )
        self._engine = engine
        self._graph: IntervalTPG = engine.graph
        self._queries: dict[str, _QueryState] = {}
        self._last_sequence: Optional[int] = None
        #: Serializes delta application against reads: concurrent callers
        #: (the server's per-graph request threads) either see the state
        #: before a batch or after it, never a half-applied one.  Reentrant
        #: so registration inside a locked read path stays legal.
        self._lock = threading.RLock()
        #: Monotone state counter: +1 per successfully applied batch.
        #: Readers capture it under the lock to label which graph state
        #: an answer belongs to.
        self._epoch = 0
        #: Durability state (attached via :meth:`attach_wal` /
        #: :meth:`configure_snapshots`, or restored by recovery).
        self._wal = None
        self._wal_seq = 0
        self._snapshot_path: Optional[str] = None
        self._snapshot_every: Optional[int] = None
        self._applies_since_snapshot = 0

    @property
    def graph(self) -> IntervalTPG:
        return self._graph

    @property
    def engine(self):
        return self._engine

    @property
    def last_sequence(self) -> Optional[int]:
        return self._last_sequence

    @property
    def lock(self) -> threading.RLock:
        """The session's apply/read lock (see :meth:`apply`)."""
        return self._lock

    @property
    def epoch(self) -> int:
        """Number of successfully applied batches (graph-state counter)."""
        return self._epoch

    @property
    def wal_seq(self) -> int:
        """WAL sequence number of the last batch this session applied."""
        return self._wal_seq

    @property
    def wal(self):
        return self._wal

    def query_names(self) -> tuple[str, ...]:
        return tuple(self._queries)

    def query_text(self, name: str) -> Optional[str]:
        """The MATCH text ``name`` was registered from (``None`` if unknown)."""
        return self._state(name).text

    # ------------------------------------------------------------------ #
    # Durability (repro.resilience)
    # ------------------------------------------------------------------ #
    def attach_wal(self, wal, *, fsync: bool = True) -> None:
        """Log every subsequently applied batch to ``wal`` (path or DeltaWAL).

        The WAL records batches *after* they apply successfully, so the
        log is always exactly the applied prefix of the stream; a
        rejected batch never reaches it.  Attaching a WAL with existing
        records positions the session after them (the normal resume
        case: recovery replayed them already).  ``fsync`` (paths only —
        a ready-made :class:`DeltaWAL` keeps its own setting) controls
        per-append power-loss durability; see
        :class:`repro.resilience.wal.DeltaWAL`.
        """
        if isinstance(wal, (str, os.PathLike)):
            from repro.resilience.wal import DeltaWAL

            wal = DeltaWAL(wal, fsync=fsync)
        self._wal = wal
        self._wal_seq = max(self._wal_seq, wal.last_seq)

    def configure_snapshots(self, path: str, every: int = 1) -> None:
        """Write a snapshot to ``path`` after every ``every`` applied batches."""
        if every < 1:
            raise ValueError(f"snapshot interval must be >= 1, got {every}")
        self._snapshot_path = str(path)
        self._snapshot_every = int(every)
        self._applies_since_snapshot = 0

    def snapshot(self, path: Optional[str] = None) -> dict:
        """Write a snapshot now; returns its metadata (see resilience.snapshot)."""
        from repro.resilience.snapshot import write_snapshot

        target = path or self._snapshot_path
        if target is None:
            raise EvaluationError(
                "no snapshot path: pass one or call configure_snapshots first"
            )
        return write_snapshot(self, target)

    def restore_positions(
        self,
        last_sequence: Optional[int] = None,
        wal_seq: Optional[int] = None,
    ) -> None:
        """Set the stream/WAL positions (used by snapshot recovery)."""
        if last_sequence is not None:
            self._last_sequence = last_sequence
        if wal_seq is not None:
            self._wal_seq = wal_seq

    # ------------------------------------------------------------------ #
    # Registration and reads
    # ------------------------------------------------------------------ #
    def register(self, query: QueryLike, name: Optional[str] = None) -> str:
        """Register a query (idempotent) and cold-evaluate it seed by seed.

        Returns the registration name — by default the query text — used
        by :meth:`results` / :meth:`table` and reported by :meth:`apply`.
        """
        if name is None:
            name = query.text if isinstance(query, (MatchQuery, CompiledMatch)) else str(query)
        with self._lock:
            existing = self._queries.get(name)
            if existing is not None:
                return name
            compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
            chain = self._engine._compile(compiled)
            if isinstance(query, str):
                text: Optional[str] = query
            else:
                text = getattr(query, "text", None)
            state = _QueryState(
                name=name,
                chain=chain,
                variables=compiled.variables,
                mode=self._engine._output_mode(chain),
                struct_radius=chain_structural_radius(chain),
                temporal_radius=chain_temporal_radius(chain),
                text=text,
            )
            seed_map, state.rest = self._seed_table(state)
            self._recompute_seeds(state, seed_map, only=None)
            self._queries[name] = state
            return name

    def results(self, name: str):
        """The merged coalesced families of a registered ``families`` query."""
        with self._lock:
            state = self._state(name)
            if state.mode != "families":
                raise EvaluationError(
                    "interval (coalesced) output is only defined when every "
                    "variable is bound within a single temporal group"
                )
            return list(self._merged(state).families)

    def table(self, name: str) -> TypingUnion[BindingTable, IntervalBindingTable]:
        """The merged binding table of a registered query."""
        with self._lock:
            return self._merged(self._state(name))

    def _state(self, name: str) -> _QueryState:
        state = self._queries.get(name)
        if state is None:
            raise EvaluationError(
                f"query {name!r} is not registered with this streaming session"
            )
        return state

    # ------------------------------------------------------------------ #
    # Delta application
    # ------------------------------------------------------------------ #
    def apply(self, batch: DeltaBatch) -> ApplyResult:
        """Apply one batch and incrementally refresh every registered query.

        Ordering is enforced first: a batch whose ``sequence`` is not
        strictly greater than the last applied one raises
        :class:`EvaluationError` (unsequenced batches are always
        accepted and do not advance the stream position).  Validation
        failures inside :func:`~repro.streaming.delta.apply_delta` also
        leave both the graph and the stream position untouched.
        """
        start = time.perf_counter()
        with self._lock:
            if batch.sequence is not None and self._last_sequence is not None:
                if batch.sequence <= self._last_sequence:
                    raise EvaluationError(
                        f"delta batch applied out of order: sequence {batch.sequence} "
                        f"after {self._last_sequence}; batches must arrive in strictly "
                        "increasing sequence order"
                    )
            if batch.is_empty():
                if batch.sequence is not None:
                    self._last_sequence = batch.sequence
                self._log_applied(batch)
                self._epoch += 1
                return ApplyResult(
                    sequence=batch.sequence,
                    new_nodes=0,
                    new_edges=0,
                    touched_objects=0,
                    horizon_advanced=False,
                    queries=tuple(
                        QueryUpdate(state.name, 0, len(state.seed_times), False)
                        for state in self._queries.values()
                    ),
                    seconds=time.perf_counter() - start,
                )
            effects = apply_delta(self._graph, batch)
            if batch.sequence is not None:
                self._last_sequence = batch.sequence
            index = self._engine.index
            if index is not None:
                index.apply_delta(effects)
            if effects.horizon_advanced:
                self._engine._refresh_domain()
            updates = tuple(
                self._update_query(state, effects) for state in self._queries.values()
            )
            self._log_applied(batch)
            self._epoch += 1
            return ApplyResult(
                sequence=batch.sequence,
                new_nodes=len(effects.new_nodes),
                new_edges=len(effects.new_edges),
                touched_objects=len(effects.touched),
                horizon_advanced=effects.horizon_advanced,
                queries=updates,
                seconds=time.perf_counter() - start,
            )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _log_applied(self, batch: DeltaBatch) -> None:
        """Record a successfully applied batch durably (WAL-after, not
        ahead: the log is the applied prefix — see :meth:`attach_wal`)."""
        if self._wal is not None:
            self._wal_seq = self._wal.append(batch)
        if self._snapshot_every is not None:
            self._applies_since_snapshot += 1
            if self._applies_since_snapshot >= self._snapshot_every:
                self.snapshot()
                self._applies_since_snapshot = 0

    def _update_query(self, state: _QueryState, effects: DeltaEffects) -> QueryUpdate:
        if effects.horizon_advanced:
            # Domain-clamped condition families shift for every object;
            # only a full re-derivation is sound.
            seed_map, state.rest = self._seed_table(state)
            self._recompute_seeds(state, seed_map, only=None)
            return QueryUpdate(state.name, len(seed_map), len(seed_map), True)
        # Only the dirty closure is ever inspected, so a small batch
        # costs O(closure), not O(total seeds): fresh seed rows are
        # looked up for the dirty objects alone, and untouched affected
        # seeds rebuild their rows from the cached (still valid,
        # object-local) satisfaction times.
        closure = self._closure(effects.dirty, state.struct_radius)
        fresh = self._engine._seed_rows_for(
            state.chain, [obj for obj in closure if obj in effects.dirty]
        )
        affected = self._affected_seeds(state, effects, closure, fresh)
        for obj in affected:
            if obj in effects.dirty:
                row = fresh.get(obj)
                if row is None:
                    # The object no longer seeds this chain (e.g. a
                    # condition stopped holding under negation).
                    state.seed_times.pop(obj, None)
                    if state.contributions.pop(obj, None) is not None:
                        state.merged = None
                    continue
                state.seed_times[obj] = row.last.times
            else:
                row = Row((Group((), obj, state.seed_times[obj]),), ())
            contribution = self._eval_seed(state, row, state.rest)
            if contribution:
                state.contributions[obj] = contribution
            else:
                state.contributions.pop(obj, None)
            state.merged = None
        return QueryUpdate(state.name, len(affected), len(state.seed_times), False)

    def _seed_table(
        self, state: _QueryState
    ) -> tuple[dict[ObjectId, Row], tuple[ChainStep, ...]]:
        """The full fresh seed table and the chain remainder."""
        seeds, rest = self._engine._initial_frontier(state.chain)
        return {row.last.current: row for row in seeds}, rest

    def _affected_seeds(
        self,
        state: _QueryState,
        effects: DeltaEffects,
        closure: set[ObjectId],
        fresh: dict[ObjectId, Row],
    ) -> set[ObjectId]:
        if state.temporal_radius is None:
            window: Optional[IntervalSet] = None  # unbounded: time filter off
        else:
            radius = state.temporal_radius
            window = effects.dirty_times.dilate(radius, radius, self._graph.domain)
        affected: set[ObjectId] = set()
        for obj in closure:
            if obj in effects.dirty:
                # The object's own families/adjacency changed: its seed
                # row (existence, satisfaction times) may appear, move
                # or vanish regardless of the cached time filter — but
                # only seeds (old or new) contribute anything.
                if obj in fresh or obj in state.seed_times:
                    affected.add(obj)
                continue
            times = state.seed_times.get(obj)
            if times is None:
                # Untouched object that never was a seed: its static
                # condition times are object-local, hence unchanged.
                continue
            if window is None or times.overlaps(window):
                affected.add(obj)
        return affected

    def _closure(self, dirty, radius: int) -> set[ObjectId]:
        index = self._engine.index
        if index is not None:
            return index.structural_closure(dirty, radius)
        graph = self._graph
        closure = {obj for obj in dirty if graph.has_object(obj)}
        frontier = set(closure)
        for _ in range(radius):
            if not frontier:
                break
            reached: set[ObjectId] = set()
            for obj in frontier:
                if graph.is_node(obj):
                    reached.update(graph.out_edges(obj))
                    reached.update(graph.in_edges(obj))
                else:
                    reached.update(graph.endpoints(obj))
            frontier = reached - closure
            closure |= frontier
        return closure

    def _recompute_seeds(
        self,
        state: _QueryState,
        seed_map: dict[ObjectId, Row],
        only: Optional[set[ObjectId]],
    ) -> int:
        """Re-derive contributions for ``only`` seeds (``None`` = all).

        The full-table path: registration and horizon advances.  (Batch
        updates take the closure-bounded path in :meth:`_update_query`.)
        Returns the number of seeds evaluated.
        """
        if only is None:
            state.seed_times = {obj: row.last.times for obj, row in seed_map.items()}
            state.contributions = {}
            targets = seed_map
        else:
            for obj in only:
                row = seed_map.get(obj)
                if row is None:
                    state.seed_times.pop(obj, None)
                    state.contributions.pop(obj, None)
                else:
                    state.seed_times[obj] = row.last.times
            targets = {obj: seed_map[obj] for obj in only if obj in seed_map}
        for obj, row in targets.items():
            contribution = self._eval_seed(state, row, state.rest)
            if contribution:
                state.contributions[obj] = contribution
            else:
                state.contributions.pop(obj, None)
        if only is None or targets or (only - set(seed_map)):
            state.merged = None
        return len(targets)

    def _eval_seed(
        self, state: _QueryState, row: Row, rest: tuple[ChainStep, ...]
    ) -> Contribution:
        from repro.dataflow.executor import _ChainStats

        engine = self._engine
        stats = _ChainStats()
        if state.mode == "families":
            # Columnar kernel for the single-seed re-derivation (no-op
            # unless the engine is kernel="columnar" and the chain shape
            # is covered); the interpreted walk below stays the oracle.
            attempt = engine._columnar_rows_attempt(
                rest, [row], state.variables, stats
            )
            if attempt is not None:
                return tuple(attempt[0])
        frontier = engine._run_chain_on([row], rest, stats)
        if not frontier:
            return ()
        if state.mode == "families":
            return engine._materializer.families(frontier, state.variables)
        # Point mode covers both the coalesced group-spanning shapes and
        # the legacy (use_coalesced=False) engine, exactly as in batch
        # Step 3.
        return engine._materialize_rows(frontier, state.variables)

    def _merged(
        self, state: _QueryState
    ) -> TypingUnion[BindingTable, IntervalBindingTable]:
        if state.merged is not None:
            return state.merged
        if state.mode == "families":
            accumulators: dict[tuple, IntervalSetAccumulator] = {}
            for contribution in state.contributions.values():
                for bindings, times in contribution:
                    accumulator = accumulators.get(bindings)
                    if accumulator is None:
                        accumulator = accumulators[bindings] = IntervalSetAccumulator()
                    accumulator.add(times)
            families = [
                (bindings, accumulator.build())
                for bindings, accumulator in accumulators.items()
            ]
            state.merged = IntervalBindingTable(state.variables, families)
        else:
            rows: set[tuple] = set()
            for contribution in state.contributions.values():
                rows.update(contribution)
            state.merged = BindingTable.build(state.variables, rows)
        return state.merged
