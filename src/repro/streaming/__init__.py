"""Incremental / streaming evaluation over growing time domains.

* :mod:`repro.streaming.delta` — the :class:`DeltaBatch` append-only
  update model (new nodes/edges, existence extension, property writes,
  horizon advance) with atomic validate-then-apply semantics;
* :mod:`repro.streaming.engine` — the :class:`StreamingEngine` session
  that keeps registered MATCH queries continuously answered by
  re-deriving only the seeds whose structural/temporal neighbourhood a
  batch dirtied, maintaining the compiled
  :class:`~repro.perf.graph_index.GraphIndex` in place.

The usual entry point is ``DataflowEngine(graph, incremental=True)``,
which owns a session and exposes :meth:`apply_delta`; the CLI surfaces
the same loop as ``repro query … --stream deltas.jsonl``.
"""

from repro.streaming.delta import (
    DeltaBatch,
    DeltaEffects,
    EdgeAdd,
    ExistenceAdd,
    NodeAdd,
    PropertySet,
    apply_delta,
)
from repro.streaming.engine import ApplyResult, QueryUpdate, StreamingEngine
from repro.streaming.reader import parse_stream_line, read_delta_stream

__all__ = [
    "DeltaBatch",
    "DeltaEffects",
    "NodeAdd",
    "EdgeAdd",
    "ExistenceAdd",
    "PropertySet",
    "apply_delta",
    "parse_stream_line",
    "read_delta_stream",
    "StreamingEngine",
    "ApplyResult",
    "QueryUpdate",
]
