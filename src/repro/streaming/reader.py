"""Structured reading of delta-batch stream files (JSON lines).

The CLI's ``query --stream deltas.jsonl`` and the recovery tooling both
consume streams of one :class:`~repro.streaming.delta.DeltaBatch` JSON
object per line.  This reader is the single place that parses them, and
it turns *every* malformed line into a structured
:class:`~repro.errors.StreamFormatError` carrying the file path, 1-based
line number and (when recoverable) the batch sequence — instead of the
raw ``KeyError``/``TypeError`` tracebacks the seed reader leaked.

Atomicity contract: the reader is a generator that validates each line
*before* yielding it, and :meth:`StreamingEngine.apply` validates each
batch before mutating anything — so a malformed or out-of-order record
anywhere in a stream leaves the engine state exactly as the last good
batch left it.

The ``stream.delta`` failpoint (kind ``"malformed"``) corrupts a parsed
payload in flight, so the chaos suite can drive this error path through
the real CLI without crafting broken fixture files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

from repro.errors import GraphIntegrityError, StreamFormatError
from repro.resilience import failpoints
from repro.streaming.delta import DeltaBatch

PathLike = Union[str, Path]


def parse_stream_line(
    line: str, *, path: str = "<stream>", number: int = 0
) -> DeltaBatch:
    """Parse one stream line into a batch, or raise :class:`StreamFormatError`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise StreamFormatError(
            f"{path}:{number}: invalid JSON ({error})", path=path, line=number
        ) from error
    if not isinstance(payload, dict):
        raise StreamFormatError(
            f"{path}:{number}: invalid delta batch (expected a JSON object, "
            f"got {type(payload).__name__})",
            path=path,
            line=number,
        )
    spec = failpoints.fire("stream.delta")
    if spec is not None and spec.kind == "malformed":
        # Chaos injection: corrupt the record the way a buggy producer
        # would — a node entry stripped of its required keys.
        payload = dict(payload)
        payload.setdefault("nodes", []).append({"bogus": True})
    sequence = payload.get("sequence")
    if sequence is not None and not isinstance(sequence, int):
        raise StreamFormatError(
            f"{path}:{number}: invalid delta batch (sequence must be an "
            f"integer, got {sequence!r})",
            path=path,
            line=number,
        )
    try:
        return DeltaBatch.from_json_dict(payload)
    except (KeyError, TypeError, AttributeError, ValueError, GraphIntegrityError) as error:
        raise StreamFormatError(
            f"{path}:{number}: invalid delta batch "
            f"({type(error).__name__}: {error})",
            path=path,
            line=number,
            sequence=sequence,
        ) from error


def read_delta_stream(path: PathLike) -> Iterator[tuple[int, DeltaBatch]]:
    """Yield ``(line_number, batch)`` for every record in the stream file.

    Blank lines and ``#`` comments are skipped; anything else must be a
    valid batch object or the generator raises :class:`StreamFormatError`
    *before* yielding it.
    """
    path = str(path)
    with open(path, "r", encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield number, parse_stream_line(line, path=path, number=number)
