"""The compiled-plan cache: ``(normalized query text, graph token)`` → plan.

The expensive front half of a query — parse, translate, chain
compilation, hop fusion against the resident
:class:`~repro.perf.graph_index.GraphIndex` — is pure in the graph
state, so the server memoizes it as a
:class:`~repro.dataflow.executor.QueryPlan` keyed by the normalized
MATCH text plus the graph's parallel-execution token.

Invalidation has two independent layers (belt and braces, because a
stale plan is a *wrong-answer* bug, not a perf bug):

* **implicit** — applying a delta rotates the graph token
  (:func:`repro.parallel.plan.invalidate_plans` runs at delta-commit
  time), so post-delta requests simply miss: their key names a token no
  cached entry carries;
* **explicit** — the server calls :meth:`PlanCache.invalidate_token`
  with the pre-delta token, dropping the now-unreachable entries
  immediately instead of letting them squat in the LRU until capacity
  pressure ages them out.

The cache is bounded (LRU eviction) and thread-safe; hit/miss/eviction/
invalidation counters feed the ``stats`` op.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from repro.dataflow.executor import QueryPlan

PlanKey = Tuple[str, str]  # (normalized query text, graph token)


class PlanCache:
    """A bounded, thread-safe LRU of compiled :class:`QueryPlan` objects."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._entries: "OrderedDict[PlanKey, QueryPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: PlanKey) -> Optional[QueryPlan]:
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: PlanKey, plan: QueryPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_token(self, token: str) -> int:
        """Drop every plan compiled against graph ``token``; returns the count."""
        with self._lock:
            stale = [key for key in self._entries if key[1] == token]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
