"""Wire protocol of the always-on query service: JSON lines over TCP.

One request per line, one response line per request, in order::

    -> {"op": "query", "graph": "default", "query": "Q1", "deadline": 2.0}
    <- {"ok": true, "result": {...}, "server": {"epoch": 0, "plan": "hit", ...}}

The envelope is deliberately small:

* every request has an ``op`` plus op-specific fields (``id`` is echoed
  back verbatim when present, for clients that pipeline);
* every response is ``{"ok": true, "result": ..., "server": ...}`` or
  ``{"ok": false, "error": {"type": ..., "message": ...}}``;
* the ``server`` section carries the observability fields operators
  need per answer: the graph ``epoch`` the answer was computed at, the
  plan-cache outcome (``"hit"`` / ``"miss"``), and wall-clock seconds.

Serialization helpers here are shared by the asyncio service and the
blocking client, so the two cannot drift.  See RELIABILITY.md for the
full request/response reference and the backpressure semantics.
"""

from __future__ import annotations

import json
import re
from typing import Any, Optional

from repro.errors import ReproError

#: Protocol revision, reported by ``ping``.
PROTOCOL_VERSION = "repro-server/1"

#: Ops the service understands (``serve --help`` and tests key off this).
OPS = (
    "ping",
    "graphs",
    "stats",
    "health",
    "query",
    "register",
    "table",
    "apply_delta",
    "shutdown",
    "replicate.subscribe",
    "replicate.ack",
)

#: Ops that mutate resident state — a standby refuses these with
#: ``NotPrimary`` (reads and control ops stay available everywhere).
WRITE_OPS = frozenset({"apply_delta", "register"})

_WHITESPACE = re.compile(r"\s+")


def normalize_query(text: str) -> str:
    """The plan-cache form of a MATCH clause: trimmed, whitespace-collapsed.

    Paper-query names (``Q1`` … ``Q12``) are resolved to their MATCH
    text first, so ``"Q5"`` and the spelled-out clause share one cache
    entry.  Normalization is purely lexical — it never changes query
    semantics, only collapses formatting noise so equivalent requests
    hit the same compiled plan.
    """
    from repro.dataflow import PAPER_QUERIES

    if text in PAPER_QUERIES:
        text = PAPER_QUERIES[text].text
    return _WHITESPACE.sub(" ", text).strip()


def encode(message: dict) -> bytes:
    """One protocol line, newline-terminated."""
    return (json.dumps(message, separators=(",", ":"), default=str) + "\n").encode(
        "utf-8"
    )


def decode(line: bytes) -> dict:
    """Parse one protocol line; raises :class:`ValueError` on bad framing."""
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError(f"protocol messages are JSON objects, got {type(message).__name__}")
    return message


def ok_response(
    result: Any, *, request: Optional[dict] = None, server: Optional[dict] = None
) -> dict:
    response: dict[str, Any] = {"ok": True, "result": result}
    if server is not None:
        response["server"] = server
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response


def error_response(
    error: BaseException | str,
    *,
    kind: Optional[str] = None,
    request: Optional[dict] = None,
) -> dict:
    """The ``ok: false`` envelope for a failed request.

    ``type`` is the exception class name (or an explicit ``kind`` such
    as ``"Overloaded"``), which the client maps back onto the
    :class:`~repro.errors.ServerError` hierarchy.  Only
    :class:`~repro.errors.ReproError` messages are forwarded verbatim;
    unexpected exceptions are reported by type alone so internal state
    never leaks onto the wire.
    """
    data: Optional[dict] = None
    if isinstance(error, BaseException):
        error_type = kind or type(error).__name__
        if isinstance(error, (ReproError, ValueError, KeyError, TypeError)):
            message = str(error)
        else:
            message = f"internal error ({type(error).__name__})"
        # Structured redirect context: a NotPrimary rejection names the
        # primary so clients re-route without a discovery round trip.
        primary = getattr(error, "primary", None)
        if primary is not None:
            data = {"primary": primary}
    else:
        error_type = kind or "ServerError"
        message = str(error)
    response: dict[str, Any] = {
        "ok": False,
        "error": {"type": error_type, "message": message},
    }
    if data:
        response["error"]["data"] = data
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response


def families_to_wire(families) -> list:
    """Coalesced ``(bindings, IntervalSet)`` families in JSON form.

    Sorted by binding representation so the wire form is canonical —
    two servers at the same graph state answer byte-identically, which
    is what the divergence checks in the smoke test and the bench rely
    on.
    """
    wire = []
    for bindings, times in families:
        wire.append(
            [
                [[name, obj] for name, obj in bindings],
                [[interval.start, interval.end] for interval in times],
            ]
        )
    wire.sort(key=lambda entry: json.dumps(entry[0], default=str))
    return wire


def rows_to_wire(rows) -> list:
    """Point rows (``((obj, t), ...)`` per variable) in sorted JSON form."""
    wire = [[[obj, t] for obj, t in row] for row in rows]
    wire.sort(key=lambda entry: json.dumps(entry, default=str))
    return wire
