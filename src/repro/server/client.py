"""A small blocking client for the always-on query service, with failover.

Speaks the JSON-lines protocol of :mod:`repro.server.protocol` over one
TCP connection at a time, drawn from a list of candidate endpoints
(primary + standbys).  Failed requests raise: ``Overloaded`` responses
map to :class:`repro.errors.Overloaded` (back off and retry),
``NotPrimary`` to :class:`repro.errors.NotPrimary` (carrying the
primary's address), a dead or draining server to
:class:`repro.errors.ConnectionClosed`, everything else to
:class:`repro.errors.ServerError` with the server-reported ``kind``.

Failover semantics — deliberately asymmetric:

* **Idempotent ops** (``ping``, ``graphs``, ``stats``, ``health``,
  ``query``, ``table``) are retried transparently: on connection loss
  the client rotates to the next endpoint under the capped backoff of
  its :class:`~repro.resilience.retry.RetryPolicy` and re-sends.  A
  read that lands on a standby is a feature, not a bug — the answer
  carries its replication lag.
* **Write ops** (``apply_delta``, ``register``) are *never* blindly
  re-sent after a connection drop (the first send may have applied).
  What the client does do is route them: a ``NotPrimary`` rejection
  re-resolves the primary — via the rejection's structured ``primary``
  field and the cheap ``health`` op across all endpoints — and retries
  there, which is exactly the window in which a standby promotes.

The client is intentionally not thread-safe — requests on one
connection are strictly in-order; use one client per thread.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Iterable, Optional, Union

from repro.errors import ConnectionClosed, NotPrimary, Overloaded, ServerError
from repro.resilience.retry import RetryPolicy
from repro.server.protocol import decode, encode

#: Ops safe to re-send after a connection drop (no state mutated).
IDEMPOTENT_OPS = frozenset({"ping", "graphs", "stats", "health", "query", "table"})

Endpoint = tuple[str, int]


def _parse_endpoint(value: Union[str, Endpoint, list]) -> Endpoint:
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return str(value[0]), int(value[1])
    text = str(value)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ServerError(f"endpoint {value!r} is not 'host:port'")
    try:
        return host, int(port)
    except ValueError:
        raise ServerError(f"endpoint {value!r} has a non-numeric port")


class ServerClient:
    """A failover-aware connection to one or more query servers.

    Accepts the single-server form used everywhere pre-replication::

        ServerClient("127.0.0.1", 4400)

    or a candidate list (primary first, by convention)::

        ServerClient(["127.0.0.1:4400", "127.0.0.1:4401"])
        ServerClient("127.0.0.1:4400,127.0.0.1:4401")

    The connection is established lazily on the first request and
    re-established (rotating through endpoints with capped backoff) on
    loss.
    """

    def __init__(
        self,
        endpoints: Union[str, Iterable],
        port: Optional[int] = None,
        *,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if port is not None:
            parsed = [(str(endpoints), int(port))]
        elif isinstance(endpoints, str):
            parsed = [_parse_endpoint(part) for part in endpoints.split(",") if part.strip()]
        else:
            parsed = [_parse_endpoint(entry) for entry in endpoints]
        if not parsed:
            raise ServerError("ServerClient needs at least one endpoint")
        self._endpoints: list[Endpoint] = parsed
        self._timeout = timeout
        self._retry = retry if retry is not None else RetryPolicy(
            retries=5, base_delay=0.05, max_delay=1.0
        )
        self._socket: Optional[socket.socket] = None
        self._reader = None
        self._current = 0

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    @property
    def endpoints(self) -> tuple[Endpoint, ...]:
        return tuple(self._endpoints)

    @property
    def connected_to(self) -> Optional[Endpoint]:
        """The endpoint of the live connection, if any."""
        return self._endpoints[self._current] if self._socket is not None else None

    def _connect(self) -> None:
        """Ensure a live connection, rotating endpoints with backoff."""
        if self._socket is not None:
            return
        delays = self._retry.delays()
        while True:
            for offset in range(len(self._endpoints)):
                index = (self._current + offset) % len(self._endpoints)
                try:
                    sock = socket.create_connection(
                        self._endpoints[index], timeout=self._timeout
                    )
                except OSError:
                    continue
                self._socket = sock
                self._reader = sock.makefile("rb")
                self._current = index
                return
            try:
                time.sleep(next(delays))
            except StopIteration:
                raise ConnectionClosed(
                    "no endpoint reachable: "
                    + ", ".join(f"{h}:{p}" for h, p in self._endpoints)
                )

    def _drop(self) -> None:
        """Discard the current connection (it can no longer be trusted)."""
        reader, sock = self._reader, self._socket
        self._reader = self._socket = None
        try:
            if reader is not None:
                reader.close()
        except OSError:
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:
            pass

    def _point_at(self, address: str) -> None:
        """Prefer ``address`` (host:port) for the next connection."""
        endpoint = _parse_endpoint(address)
        if endpoint not in self._endpoints:
            self._endpoints.append(endpoint)
        self._current = self._endpoints.index(endpoint)

    def resolve_primary(self) -> Optional[str]:
        """Ask every endpoint's ``health`` op who accepts writes now."""
        for host, port in list(self._endpoints):
            try:
                with socket.create_connection(
                    (host, port), timeout=min(self._timeout, 2.0)
                ) as probe:
                    probe.sendall(encode({"op": "health"}))
                    line = probe.makefile("rb").readline()
                if not line:
                    continue
                response = decode(line)
                report = response.get("result", {}) if response.get("ok") else {}
                if report.get("role") == "primary" and report.get("status") == "ready":
                    return str(report.get("address") or f"{host}:{port}")
            except (OSError, ValueError):
                continue
        return None

    # ------------------------------------------------------------------ #
    # Core request/response
    # ------------------------------------------------------------------ #
    def request(self, op: str, **fields: Any) -> dict:
        """Send one request, wait for its response line, unwrap errors.

        Idempotent ops transparently fail over; writes re-route to the
        current primary on ``NotPrimary`` but surface
        :class:`ConnectionClosed` rather than re-sending blind.
        """
        payload = {"op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        attempts = self._retry.delays()
        while True:
            try:
                self._connect()
                return self._roundtrip(payload)
            except ConnectionClosed:
                self._drop()
                if op not in IDEMPOTENT_OPS:
                    raise
                # Rotate away from the dead endpoint before the retry.
                self._current = (self._current + 1) % len(self._endpoints)
                delay = next(attempts, None)
                if delay is None:  # retry budget spent
                    raise
                time.sleep(delay)
            except NotPrimary as error:
                # A standby refused a write: re-resolve who the primary
                # is (promotion may be mid-flight) and retry there.
                self._drop()
                target = self.resolve_primary() or error.primary
                if target is not None:
                    self._point_at(target)
                delay = next(attempts, None)
                if delay is None:
                    raise
                time.sleep(delay)

    def _roundtrip(self, payload: dict) -> dict:
        assert self._socket is not None and self._reader is not None
        try:
            self._socket.sendall(encode(payload))
            line = self._reader.readline()
        except OSError as error:
            raise ConnectionClosed(f"connection lost mid-request: {error}")
        if not line:
            raise ConnectionClosed(
                "server closed the connection without answering"
            )
        try:
            response = decode(line)
        except ValueError:
            # A truncated line is a server dying mid-write, not a
            # protocol bug worth a JSONDecodeError traceback.
            raise ConnectionClosed("server sent a truncated response line")
        if response.get("ok"):
            return response
        error = response.get("error", {})
        kind = error.get("type", "ServerError")
        message = error.get("message", "request failed")
        if kind == "Overloaded":
            raise Overloaded(message)
        if kind == "NotPrimary":
            raise NotPrimary(
                message, primary=(error.get("data") or {}).get("primary")
            )
        raise ServerError(message, kind=kind)

    # ------------------------------------------------------------------ #
    # Convenience ops
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.request("ping")["result"]

    def graphs(self) -> list:
        return self.request("graphs")["result"]

    def stats(self) -> dict:
        return self.request("stats")["result"]

    def health(self) -> dict:
        return self.request("health")["result"]

    def query(
        self,
        text: str,
        *,
        graph: str = "default",
        deadline: Optional[float] = None,
        retries: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> dict:
        """Evaluate ``text`` (a MATCH clause or paper-query name).

        Returns the full response envelope — ``response["result"]``
        holds the answer, ``response["server"]`` the epoch / plan-cache
        outcome / timing (plus replication lag when a standby answered).
        """
        return self.request(
            "query",
            graph=graph,
            query=text,
            deadline=deadline,
            retries=retries,
            limit=limit,
        )

    def register(self, text: str, *, graph: str = "default", name: Optional[str] = None) -> dict:
        return self.request("register", graph=graph, query=text, name=name)

    def table(self, name: str, *, graph: str = "default", limit: Optional[int] = None) -> dict:
        return self.request("table", graph=graph, name=name, limit=limit)

    def apply_delta(self, batch: dict, *, graph: str = "default") -> dict:
        return self.request("apply_delta", graph=graph, batch=batch)

    def shutdown(self) -> dict:
        return self.request("shutdown")["result"]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
