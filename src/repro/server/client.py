"""A small blocking client for the always-on query service.

Speaks the JSON-lines protocol of :mod:`repro.server.protocol` over one
TCP connection.  Failed requests raise: ``Overloaded`` responses map to
:class:`repro.errors.Overloaded` (back off and retry), everything else
to :class:`repro.errors.ServerError` carrying the server-reported
``kind``.  The client is intentionally not thread-safe — requests on
one connection are strictly in-order; use one client per thread.
"""

from __future__ import annotations

import socket
from typing import Any, Optional

from repro.errors import Overloaded, ServerError
from repro.server.protocol import decode, encode


class ServerClient:
    """One connection to a :class:`~repro.server.service.QueryServer`."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")

    # ------------------------------------------------------------------ #
    # Core request/response
    # ------------------------------------------------------------------ #
    def request(self, op: str, **fields: Any) -> dict:
        """Send one request, wait for its response line, unwrap errors."""
        payload = {"op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        self._socket.sendall(encode(payload))
        line = self._reader.readline()
        if not line:
            raise ServerError("server closed the connection", kind="ConnectionClosed")
        response = decode(line)
        if response.get("ok"):
            return response
        error = response.get("error", {})
        kind = error.get("type", "ServerError")
        message = error.get("message", "request failed")
        if kind == "Overloaded":
            raise Overloaded(message)
        raise ServerError(message, kind=kind)

    # ------------------------------------------------------------------ #
    # Convenience ops
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.request("ping")["result"]

    def graphs(self) -> list:
        return self.request("graphs")["result"]

    def stats(self) -> dict:
        return self.request("stats")["result"]

    def query(
        self,
        text: str,
        *,
        graph: str = "default",
        deadline: Optional[float] = None,
        retries: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> dict:
        """Evaluate ``text`` (a MATCH clause or paper-query name).

        Returns the full response envelope — ``response["result"]``
        holds the answer, ``response["server"]`` the epoch / plan-cache
        outcome / timing.
        """
        return self.request(
            "query",
            graph=graph,
            query=text,
            deadline=deadline,
            retries=retries,
            limit=limit,
        )

    def register(self, text: str, *, graph: str = "default", name: Optional[str] = None) -> dict:
        return self.request("register", graph=graph, query=text, name=name)

    def table(self, name: str, *, graph: str = "default", limit: Optional[int] = None) -> dict:
        return self.request("table", graph=graph, name=name, limit=limit)

    def apply_delta(self, batch: dict, *, graph: str = "default") -> dict:
        return self.request("apply_delta", graph=graph, batch=batch)

    def shutdown(self) -> dict:
        return self.request("shutdown")["result"]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
