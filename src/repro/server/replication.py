"""WAL-shipping replication: hot standbys, heartbeats, promotion.

The serving layer's answer to process death: a **primary** ``repro
serve`` ships every applied delta record to subscribed **standbys**,
which keep the same graph, compiled index, plan cache and registered
queries warm — so when the primary dies, a standby promotes in bounded
time instead of a client waiting out a cold restart.

Design — one mechanism, reused end to end:

* The shipped unit is the WAL frame ``{seq, crc, batch}`` of
  :mod:`repro.resilience.wal` — byte-identical to what the primary's
  on-disk log records.  A standby verifies a shipped frame exactly the
  way crash recovery verifies a stored record, and applies it through
  the normal :meth:`~repro.server.state.GraphHost.apply_frame` path, so
  plan-cache rotation and epoch labelling work unchanged.  A promoted
  standby therefore answers *epoch-identically* to a never-crashed
  primary through the last record it applied.
* Subscription rides the existing JSON-lines protocol: a standby sends
  ``{"op": "replicate.subscribe", "graph": ..., "from_seq": N}`` and the
  connection switches to streaming mode — the primary pushes ``record``
  / ``heartbeat`` / ``close`` frames, the standby pushes
  ``replicate.ack`` lines back.  Catch-up comes from the primary's own
  WAL (which is why subscribing requires one), live records from the
  per-host ``on_applied`` tap; frames are deduplicated by sequence so
  the race between the catch-up scan and live publication is harmless.
* **Promotion** is driven by liveness, not configuration: the standby
  counts any frame (record or heartbeat) as contact, and on sustained
  loss — no contact for ``failover_after`` seconds across reconnect
  attempts — it *fences* (records the dead primary's address and the
  last sequence it applied, the boundary of what it can have seen) and
  promotes: role flips to primary, writes are accepted, and its own
  subscribers keep flowing.  A primary that drains gracefully sends a
  ``close`` frame, which hands off immediately instead of waiting out
  the timeout.

Protocol invariants, in one place (the chaos suite's checklist):

1. **Frame identity** — a shipped frame is byte-identical to the
   primary's on-disk WAL record for the same sequence; CRC verification
   is the same code on both paths.
2. **Sequences are dense and monotonic per graph**; a standby applies
   frame *n+1* only after *n*, and duplicate sequences (catch-up racing
   live publication) are dropped, never re-applied.
3. **Acks trail applies** — ``replicate.ack`` is sent only after
   :meth:`~repro.server.state.GraphHost.apply_frame` succeeds, so the
   primary's per-subscriber ``lag`` (``last_seq - acked``) never
   understates how far behind a standby really is.
4. **Fencing bounds the promoted history** — a promoting standby
   records the dead primary's address and the last sequence it
   applied *before* accepting writes; answers it serves afterwards are
   epoch-identical to the old primary's through that boundary.
5. **Graceful beats the timeout** — a draining primary's ``close``
   frame hands off immediately; the ``failover_after`` window exists
   only for the crash case.

Failpoints: ``replicate.ship`` fires before each record frame leaves the
primary (a ``kill`` spec is the chaos suite's deterministic
"primary dies mid-stream"), ``replicate.apply`` before a standby applies
a shipped frame (``sleep`` manufactures replication lag on demand).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ServerError
from repro.resilience import failpoints
from repro.resilience.wal import record_frame, scan_wal, verify_frame
from repro.server.protocol import PROTOCOL_VERSION, decode, encode, error_response, ok_response

#: Default seconds between heartbeat frames on an idle subscription.
HEARTBEAT_INTERVAL = 1.0
#: Default sustained-loss window before a standby promotes.
FAILOVER_AFTER = 5.0


@dataclass
class _Subscriber:
    """One subscribed standby connection on the primary."""

    graph: str
    peer: str
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    #: Highest sequence actually written to this subscriber.
    last_sent: int = 0
    #: Highest sequence the standby acknowledged as applied.
    acked: int = 0

    def to_dict(self, last_seq: int) -> dict:
        return {
            "peer": self.peer,
            "last_sent": self.last_sent,
            "acked_seq": self.acked,
            "lag": max(0, last_seq - self.acked),
        }


class ReplicationHub:
    """Primary-side fan-out of applied WAL frames to subscribed standbys.

    Owned by the :class:`~repro.server.service.QueryServer`; lives on its
    event loop.  Publication is thread-safe: the per-host ``on_applied``
    tap fires on an executor thread under the host lock and bounces the
    frame onto the loop with ``call_soon_threadsafe``, so subscribers
    observe frames in apply order.
    """

    def __init__(
        self,
        state,
        *,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        status: Optional[Callable[[], str]] = None,
    ) -> None:
        self._state = state
        self._heartbeat = heartbeat_interval
        self._status = status or (lambda: "ready")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._subscribers: dict[str, list[_Subscriber]] = {}
        self._shipped = 0

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the hub to ``loop`` and tap every resident host."""
        self._loop = loop
        for name, host in self._state.hosts.items():
            host.on_applied.append(self._tap(name, "record"))
            host.on_registered.append(self._register_tap(name))

    def _tap(self, graph: str, kind: str):
        def on_applied(frame: dict) -> None:
            loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(self._publish, graph, kind, frame)

        return on_applied

    def _register_tap(self, graph: str):
        def on_registered(name: str, text: str) -> None:
            loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(
                    self._publish, graph, "register", {"name": name, "query": text}
                )

        return on_registered

    def _publish(self, graph: str, kind: str, payload: dict) -> None:
        for subscriber in self._subscribers.get(graph, ()):
            subscriber.queue.put_nowait((kind, payload))

    def _last_seq(self, graph: str) -> int:
        host = self._state.hosts.get(graph)
        return 0 if host is None else host.session.wal_seq

    # ------------------------------------------------------------------ #
    # Subscription serving (takes over the connection)
    # ------------------------------------------------------------------ #
    async def serve_subscriber(
        self, request: dict, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one ``replicate.subscribe`` connection until it drops."""
        graph = request.get("graph", "default")
        host = self._state.hosts.get(graph)
        if host is None:
            writer.write(
                encode(error_response(f"graph {graph!r} is not resident", request=request))
            )
            await writer.drain()
            return
        wal = host.session.wal
        if wal is None:
            writer.write(
                encode(
                    error_response(
                        "replication requires a WAL on the primary "
                        "(start it with --wal so standbys can catch up)",
                        kind="ServerError",
                        request=request,
                    )
                )
            )
            await writer.drain()
            return
        try:
            from_seq = int(request.get("from_seq", 0))
        except (TypeError, ValueError):
            writer.write(
                encode(
                    error_response(
                        f"from_seq must be an integer, got {request.get('from_seq')!r}",
                        kind="ProtocolError",
                        request=request,
                    )
                )
            )
            await writer.drain()
            return
        peername = writer.get_extra_info("peername")
        peer = str(request.get("standby") or (f"{peername[0]}:{peername[1]}" if peername else "?"))
        subscriber = _Subscriber(graph=graph, peer=peer, last_sent=from_seq, acked=from_seq)
        # Register BEFORE the catch-up scan: records applied while we read
        # the WAL buffer in the queue, and the sequence dedup below drops
        # whatever both paths deliver.
        self._subscribers.setdefault(graph, []).append(subscriber)
        try:
            writer.write(
                encode(
                    ok_response(
                        {
                            "protocol": PROTOCOL_VERSION,
                            "graph": graph,
                            "from_seq": from_seq,
                            "last_seq": wal.last_seq,
                            "heartbeat_interval": self._heartbeat,
                            # Registrations are not WAL records, so the
                            # subscribe handshake carries the current set
                            # (live changes follow as `register` frames).
                            "queries": host.registered_queries(),
                        },
                        request=request,
                    )
                )
            )
            await writer.drain()
            await self._catch_up(subscriber, wal.path, from_seq, writer)
            sender = asyncio.create_task(self._send_loop(subscriber, writer))
            acker = asyncio.create_task(self._ack_loop(subscriber, reader))
            done, pending = await asyncio.wait(
                {sender, acker}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            for task in done:
                # Surface unexpected sender/acker failures (connection
                # errors are swallowed inside the loops themselves).
                exc = task.exception()
                if exc is not None and not isinstance(exc, (ConnectionError, OSError)):
                    raise exc
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                self._subscribers.get(graph, []).remove(subscriber)
            except ValueError:
                pass

    async def _catch_up(
        self,
        subscriber: _Subscriber,
        wal_path: str,
        from_seq: int,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Ship the WAL records the standby is missing, oldest first."""
        loop = asyncio.get_running_loop()
        scan = await loop.run_in_executor(None, scan_wal, wal_path)
        for record in scan.records:
            if record.seq <= from_seq:
                continue
            await self._ship(
                subscriber, writer, record_frame(record.seq, record.batch.to_json_dict())
            )

    async def _ship(
        self, subscriber: _Subscriber, writer: asyncio.StreamWriter, frame: dict
    ) -> None:
        failpoints.fire("replicate.ship")
        writer.write(encode({"kind": "record", "frame": frame}))
        await writer.drain()
        subscriber.last_sent = int(frame["seq"])
        self._shipped += 1

    async def _send_loop(
        self, subscriber: _Subscriber, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                item = await asyncio.wait_for(
                    subscriber.queue.get(), timeout=self._heartbeat
                )
            except asyncio.TimeoutError:
                writer.write(
                    encode(
                        {
                            "kind": "heartbeat",
                            "last_seq": self._last_seq(subscriber.graph),
                            "status": self._status(),
                        }
                    )
                )
                await writer.drain()
                continue
            kind, payload = item
            if kind == "close":
                writer.write(
                    encode(
                        {
                            "kind": "close",
                            "reason": payload,
                            "last_seq": self._last_seq(subscriber.graph),
                        }
                    )
                )
                await writer.drain()
                return
            if kind == "register":
                writer.write(encode({"kind": "register", **payload}))
                await writer.drain()
                continue
            frame = payload
            if int(frame["seq"]) <= subscriber.last_sent:
                continue  # already delivered by the catch-up scan
            await self._ship(subscriber, writer, frame)

    async def _ack_loop(
        self, subscriber: _Subscriber, reader: asyncio.StreamReader
    ) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return  # standby hung up
            try:
                message = decode(line)
            except ValueError:
                return
            if message.get("op") == "replicate.ack":
                try:
                    subscriber.acked = max(subscriber.acked, int(message.get("seq", 0)))
                except (TypeError, ValueError):
                    pass

    # ------------------------------------------------------------------ #
    # Lifecycle + observability
    # ------------------------------------------------------------------ #
    async def close_all(self, reason: str) -> None:
        """Notify every subscriber the primary is going away (drain)."""
        subscribers = [s for subs in self._subscribers.values() for s in subs]
        for subscriber in subscribers:
            subscriber.queue.put_nowait(("close", reason))
        # Give the senders one scheduling round to flush the close frames
        # (each close exits its send loop; pending records precede it in
        # the queue, so nothing applied is silently dropped).
        for _ in range(50):
            if not any(subs for subs in self._subscribers.values()):
                break
            await asyncio.sleep(0.01)

    def stats(self) -> dict:
        graphs = {}
        for graph, subscribers in self._subscribers.items():
            last_seq = self._last_seq(graph)
            graphs[graph] = {
                "last_seq": last_seq,
                "standbys": [s.to_dict(last_seq) for s in subscribers],
            }
        return {"shipped": self._shipped, "graphs": graphs}

    @property
    def standby_count(self) -> int:
        return sum(len(subs) for subs in self._subscribers.values())


class StandbyRunner:
    """Standby-side replication client: subscribe, apply, ack, promote.

    Runs as asyncio tasks on the standby server's loop — one replication
    task per resident graph plus one liveness monitor.  Any frame from
    the primary (record or heartbeat, on any graph) counts as *contact*;
    when contact is lost for ``failover_after`` seconds straight (read
    timeouts, refused reconnects), the monitor fences and promotes the
    server.  A graceful ``close`` frame from a draining primary promotes
    immediately.
    """

    def __init__(
        self,
        server,
        state,
        primary: tuple[str, int],
        *,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        failover_after: float = FAILOVER_AFTER,
    ) -> None:
        if failover_after <= 0:
            raise ServerError(f"failover_after must be positive, got {failover_after}")
        self._server = server
        self._state = state
        self._primary = primary
        self._heartbeat = heartbeat_interval
        self._failover_after = failover_after
        self._tasks: list[asyncio.Task] = []
        self._stopped = False
        self._promoted = False
        self._last_contact = time.monotonic()
        #: Per-graph view of the primary's WAL position (heartbeats and
        #: shipped records both advance it).
        self._primary_seq: dict[str, int] = {}
        self._caught_up: set[str] = set()
        self.fence: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        for name in self._state.hosts:
            self._tasks.append(asyncio.create_task(self._replicate_graph(name)))
        self._tasks.append(asyncio.create_task(self._monitor()))

    async def stop(self) -> None:
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []

    @property
    def primary_address(self) -> str:
        return f"{self._primary[0]}:{self._primary[1]}"

    @property
    def promoted(self) -> bool:
        return self._promoted

    def lag(self) -> dict:
        """Per-graph replication lag: shipped-vs-applied WAL positions."""
        graphs = {}
        for name, host in self._state.hosts.items():
            applied = host.session.wal_seq
            primary_seq = max(self._primary_seq.get(name, 0), applied)
            graphs[name] = {
                "applied_seq": applied,
                "primary_seq": primary_seq,
                "lag": max(0, primary_seq - applied),
            }
        return graphs

    # ------------------------------------------------------------------ #
    # Replication protocol (one connection per graph)
    # ------------------------------------------------------------------ #
    async def _replicate_graph(self, name: str) -> None:
        host = self._state.hosts[name]
        backoff = min(0.2, self._heartbeat)
        while not self._stopped and not self._promoted:
            try:
                await self._stream_once(name, host)
            except asyncio.CancelledError:
                raise
            except (ConnectionError, OSError, asyncio.TimeoutError, ValueError):
                pass
            if self._stopped or self._promoted:
                return
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, self._failover_after / 2, 2.0)

    async def _stream_once(self, name: str, host) -> None:
        """One subscribe-and-apply session; returns/raises on disconnect."""
        reader, writer = await asyncio.open_connection(*self._primary)
        try:
            self._touch()
            writer.write(
                encode(
                    {
                        "op": "replicate.subscribe",
                        "graph": name,
                        "from_seq": host.session.wal_seq,
                        "standby": self._server.address if self._server else None,
                    }
                )
            )
            await writer.drain()
            line = await asyncio.wait_for(
                reader.readline(), timeout=self._failover_after
            )
            if not line:
                return
            response = decode(line)
            if not response.get("ok"):
                # The peer refused (not primary / no WAL / unknown graph):
                # keep retrying — it may become subscribeable (e.g. it is
                # itself still recovering) — but do not count the refusal
                # as lost contact; the process is alive.
                self._touch()
                return
            self._note_primary_seq(name, int(response["result"].get("last_seq", 0)))
            loop = asyncio.get_running_loop()
            await self._mirror_queries(
                loop, host, response["result"].get("queries") or {}
            )
            while not self._stopped and not self._promoted:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self._failover_after
                )
                if not line:
                    return  # primary hung up without a close frame
                message = decode(line)
                self._touch()
                kind = message.get("kind")
                if kind == "record":
                    frame = message.get("frame") or {}
                    seq = int(frame.get("seq", 0))
                    applied = host.session.wal_seq
                    if seq <= applied:
                        continue  # duplicate delivery
                    if seq != applied + 1:
                        return  # gap: resubscribe and let catch-up refill
                    failpoints.fire("replicate.apply")
                    await loop.run_in_executor(None, host.apply_frame, frame)
                    self._note_primary_seq(name, seq)
                    writer.write(encode({"op": "replicate.ack", "seq": seq}))
                    await writer.drain()
                elif kind == "heartbeat":
                    self._note_primary_seq(name, int(message.get("last_seq", 0)))
                elif kind == "register":
                    await self._mirror_queries(
                        loop, host, {message.get("name"): message.get("query")}
                    )
                elif kind == "close":
                    # Graceful drain: every applied record preceded this
                    # frame on the wire, so hand off immediately.
                    self._promote(f"primary drained ({message.get('reason')})")
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _mirror_queries(self, loop, host, queries: dict) -> None:
        """Register the primary's continuously-answered queries locally."""
        for name, text in queries.items():
            if not name or not text or name in host.session.query_names():
                continue
            await loop.run_in_executor(
                None, lambda n=name, t=text: host.register(t, name=n)
            )

    # ------------------------------------------------------------------ #
    # Liveness + promotion
    # ------------------------------------------------------------------ #
    def _touch(self) -> None:
        self._last_contact = time.monotonic()

    def _note_primary_seq(self, name: str, seq: int) -> None:
        self._primary_seq[name] = max(self._primary_seq.get(name, 0), seq)
        host = self._state.hosts.get(name)
        if (
            host is not None
            and name not in self._caught_up
            and host.session.wal_seq >= self._primary_seq[name]
        ):
            self._caught_up.add(name)
            if self._server is not None and len(self._caught_up) == len(
                self._state.hosts
            ):
                self._server.note_caught_up()

    async def _monitor(self) -> None:
        """Promote on sustained loss of contact with the primary."""
        while not self._stopped and not self._promoted:
            await asyncio.sleep(min(self._heartbeat, self._failover_after) / 2)
            if time.monotonic() - self._last_contact > self._failover_after:
                self._promote(
                    f"no contact with primary {self.primary_address} for "
                    f"{self._failover_after:.1f}s"
                )
                return

    def _promote(self, reason: str) -> None:
        if self._promoted or self._stopped:
            return
        self._promoted = True
        # Fence first: record the dead primary and the exact boundary of
        # what this standby can have seen from it.  Records beyond the
        # fence existed (if at all) only on the dead primary's disk and
        # are recovered by restarting it as a standby of the new primary.
        self.fence = {
            "previous_primary": self.primary_address,
            "fence_seq": {
                name: host.session.wal_seq for name, host in self._state.hosts.items()
            },
            "reason": reason,
        }
        if self._server is not None:
            self._server.promote(self.fence)
        for task in self._tasks:
            if task is not asyncio.current_task():
                task.cancel()
