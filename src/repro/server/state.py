"""Resident server state: graphs, compiled indexes, sessions, plan cache.

A :class:`GraphHost` is everything the service keeps warm for one named
graph:

* the graph itself and its compiled
  :class:`~repro.perf.graph_index.GraphIndex` (shared via
  :func:`~repro.perf.graph_index.graph_index_for`, so condition/hop
  tables amortize across the whole query mix);
* one :class:`~repro.dataflow.executor.DataflowEngine` configured with
  the server's workers/backend — under ``backend="process"`` its
  dispatches land on the warm shared
  :class:`~repro.parallel.pool.WorkerPool`;
* a :class:`~repro.streaming.engine.StreamingEngine` session driving the
  same engine: it applies deltas, keeps registered queries continuously
  answered, and (with an attached WAL / snapshot path) makes the
  resident state recoverable across restarts.

Consistency model: the session's reentrant lock serializes *everything*
on one host — ad-hoc queries, registered-table reads, delta
application.  Requests therefore see either the state before a batch or
after it, never a torn half-applied one, and every answer is labelled
with the session ``epoch`` it was computed at.  Hosts are independent:
requests against different graphs run concurrently.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.dataflow.executor import DataflowEngine, MatchResult
from repro.errors import EvaluationError, ServerError
from repro.eval.bindings import IntervalBindingTable
from repro.model import contact_tracing_example, graph_statistics
from repro.model.io import load_json
from repro.parallel.plan import graph_token
from repro.resilience.retry import RetryPolicy
from repro.server.plans import PlanCache
from repro.server.protocol import families_to_wire, normalize_query, rows_to_wire
from repro.streaming.delta import DeltaBatch
from repro.streaming.engine import StreamingEngine


class GraphHost:
    """One resident graph with its warm engine, session and durability."""

    def __init__(
        self,
        name: str,
        graph,
        *,
        workers: int = 1,
        backend: str = "thread",
        plans: Optional[PlanCache] = None,
        wal: Optional[str] = None,
        snapshot: Optional[str] = None,
        snapshot_every: int = 1,
        wal_fsync: bool = True,
    ) -> None:
        self.name = name
        self.engine = DataflowEngine(graph, workers=workers, parallel_backend=backend)
        self.graph = self.engine.graph
        self.index = self.engine.index
        self.session = StreamingEngine(engine=self.engine)
        self.plans = plans if plans is not None else PlanCache()
        #: The session lock doubles as the host lock (see module docstring).
        self.lock = self.session.lock
        #: Replication taps: callables invoked (under the host lock, so
        #: frames observe apply order) with each applied WAL frame
        #: ``{seq, crc, batch}`` — the hub ships these to standbys.
        self.on_applied: list = []
        #: Registration taps: callables invoked with ``(name, text)``
        #: when a continuously-answered query is registered, so standbys
        #: mirror the registered set (registrations are not WAL records).
        self.on_registered: list = []
        if wal is not None:
            self.session.attach_wal(wal, fsync=wal_fsync)
        if snapshot is not None:
            self.session.configure_snapshots(snapshot, every=snapshot_every)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_files(
        cls,
        name: str,
        graph_path: Optional[str],
        *,
        wal: Optional[str] = None,
        snapshot: Optional[str] = None,
        snapshot_every: int = 1,
        store: Optional[str] = None,
        **config,
    ) -> tuple["GraphHost", Optional[dict]]:
        """Build a host, recovering from ``snapshot`` + ``wal`` when present.

        Recovery-on-restart semantics: an existing snapshot wins over
        both ``store`` and ``graph_path`` — the snapshot graph plus the
        WAL tail *is* the state the previous process durably reached,
        and the recovered queries are re-registered so continuous
        answers resume where they left off.  Otherwise a ``store``
        (compiled ``repro-index`` artifact, see :func:`repro.store.attach`)
        is attached in O(1) instead of loading + recompiling
        ``graph_path`` — the restart skips index compilation entirely,
        and a WAL tail still replays on top (materializing the attached
        graph and maintaining the index incrementally).  Returns
        ``(host, recovery_report_dict | None)``.
        """
        if snapshot is not None and os.path.exists(snapshot):
            from repro.resilience.snapshot import recover

            session, report = recover(snapshot, wal)
            host = cls(
                name,
                session.graph,
                wal=wal,
                snapshot=snapshot,
                snapshot_every=snapshot_every,
                **config,
            )
            for query_name in report.queries:
                text = session.query_text(query_name)
                if text is not None:
                    host.session.register(text, name=query_name)
            host.session.restore_positions(
                last_sequence=session.last_sequence, wal_seq=session.wal_seq
            )
            return host, report.to_dict()
        if store is not None:
            from repro.store import attach

            graph = attach(store).graph
        elif graph_path is None:
            graph = contact_tracing_example()
        else:
            graph = load_json(graph_path)
        host = cls(name, graph, **config)
        if wal is not None and os.path.exists(wal):
            # No snapshot, but the WAL holds a previous run's applied
            # batches: replay them (before attaching the WAL, so the
            # replays are not appended a second time).
            from repro.resilience.wal import scan_wal

            for record in scan_wal(wal).records:
                host.session.apply(record.batch)
                host.session.restore_positions(wal_seq=record.seq)
        if wal is not None:
            host.session.attach_wal(wal)
        if snapshot is not None:
            host.session.configure_snapshots(snapshot, every=snapshot_every)
        return host, None

    # ------------------------------------------------------------------ #
    # Request execution (all under the host lock)
    # ------------------------------------------------------------------ #
    def query(
        self,
        text: str,
        *,
        deadline: Optional[float] = None,
        retries: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> dict:
        """Evaluate one ad-hoc query through the compiled-plan cache."""
        normalized = normalize_query(text)
        retry = None if retries is None else RetryPolicy(retries=retries)
        start = time.perf_counter()
        with self.lock:
            token = graph_token(self.graph)
            key = (normalized, token)
            plan = self.plans.get(key)
            outcome = "hit" if plan is not None else "miss"
            if plan is None:
                plan = self.engine.prepare(normalized)
                self.plans.put(key, plan)
            result: MatchResult = self.engine.match_with_stats(
                plan, deadline_seconds=deadline, retry=retry
            )
            epoch = self.session.epoch
        payload = self._table_payload(result.table, limit)
        payload["interval_seconds"] = result.interval_seconds
        payload["total_seconds"] = result.total_seconds
        payload["degradation"] = result.degradation
        return {
            "result": payload,
            "server": {
                "graph": self.name,
                "epoch": epoch,
                "plan": outcome,
                "seconds": time.perf_counter() - start,
            },
        }

    def register(self, text: str, name: Optional[str] = None) -> dict:
        """Register a continuously-answered query on the resident session."""
        if name is None:
            from repro.dataflow import PAPER_QUERIES

            # "register Q5" should be readable back as table("Q5"), not
            # under the spelled-out MATCH text the alias resolves to.
            if text in PAPER_QUERIES:
                name = text
        with self.lock:
            normalized = normalize_query(text)
            registered = self.session.register(normalized, name=name)
            epoch = self.session.epoch
            for callback in tuple(self.on_registered):
                callback(registered, normalized)
        return {
            "result": {"name": registered, "queries": list(self.session.query_names())},
            "server": {"graph": self.name, "epoch": epoch},
        }

    def table(self, name: str, *, limit: Optional[int] = None) -> dict:
        """Read a registered query's continuously-maintained answer."""
        with self.lock:
            table = self.session.table(name)
            epoch = self.session.epoch
        payload = self._table_payload(table, limit)
        return {
            "result": payload,
            "server": {"graph": self.name, "epoch": epoch},
        }

    def apply_delta(self, payload: dict) -> dict:
        """Apply one delta batch; compiled plans for the old state drop."""
        batch = DeltaBatch.from_json_dict(payload)
        with self.lock:
            old_token = graph_token(self.graph)
            applied = self.session.apply(batch)
            # apply_delta rotated the graph token, so cached plans keyed
            # by the old one are unreachable — drop them eagerly.
            invalidated = self.plans.invalidate_token(old_token)
            epoch = self.session.epoch
            if self.on_applied and self.session.wal is not None:
                # Rebuild the exact frame the WAL just recorded (same
                # canonical encoding, same CRC) and hand it to the
                # replication taps while still holding the lock, so
                # standbys receive frames in apply order.
                from repro.resilience.wal import record_frame

                self._notify_applied(
                    record_frame(self.session.wal_seq, batch.to_json_dict())
                )
        return {
            "result": {
                "sequence": applied.sequence,
                "new_nodes": applied.new_nodes,
                "new_edges": applied.new_edges,
                "touched": applied.touched_objects,
                "horizon_advanced": applied.horizon_advanced,
                "queries": {
                    update.name: {
                        "affected_seeds": update.affected_seeds,
                        "total_seeds": update.total_seeds,
                        "recomputed_all": update.recomputed_all,
                    }
                    for update in applied.queries
                },
                "plans_invalidated": invalidated,
                "seconds": applied.seconds,
            },
            "server": {"graph": self.name, "epoch": epoch},
        }

    def apply_frame(self, frame: dict) -> dict:
        """Apply one shipped WAL frame (the standby's apply path).

        The frame is checksum-verified exactly like a stored WAL record,
        then applied through the normal :meth:`apply_delta` machinery —
        plan-cache rotation, epoch labelling and registered-query
        maintenance all work unchanged, which is what makes a promoted
        standby answer epoch-identically to a never-crashed primary.
        When the standby logs to its own WAL the applied record lands
        there with the same sequence; without one the session's WAL
        position is advanced to the shipped ``seq`` so lag accounting
        and a later promotion still line up.
        """
        from repro.resilience.wal import record_frame, verify_frame

        batch = verify_frame(frame)
        seq = int(frame["seq"])
        with self.lock:
            old_token = graph_token(self.graph)
            self.session.apply(batch)
            invalidated = self.plans.invalidate_token(old_token)
            if self.session.wal is None:
                self.session.restore_positions(wal_seq=seq)
            epoch = self.session.epoch
            if self.on_applied:
                # Chained standbys (and post-promotion subscribers) see
                # the same frame flow regardless of who applied it.
                self._notify_applied(record_frame(seq, batch.to_json_dict()))
        return {"seq": seq, "epoch": epoch, "plans_invalidated": invalidated}

    def _notify_applied(self, frame: dict) -> None:
        for callback in tuple(self.on_applied):
            callback(frame)

    def registered_queries(self) -> dict:
        """``{name: query text}`` of the continuously-answered queries."""
        with self.lock:
            return {
                name: self.session.query_text(name)
                for name in self.session.query_names()
            }

    def stats(self) -> dict:
        with self.lock:
            stats = graph_statistics(self.graph).as_row()
            return {
                "graph": dict(stats),
                "epoch": self.session.epoch,
                "index_epoch": None if self.index is None else self.index.epoch,
                "queries": list(self.session.query_names()),
                "plan_cache": self.plans.stats(),
                "workers": self.engine.workers,
                "backend": self.engine.parallel_backend,
                "wal": None if self.session.wal is None else self.session.wal.path,
                "wal_seq": self.session.wal_seq,
                "last_sequence": self.session.last_sequence,
            }

    def close(self) -> None:
        wal = self.session.wal
        if wal is not None:
            wal.close()

    @staticmethod
    def _table_payload(table, limit: Optional[int]) -> dict:
        """The wire form of an answer table (canonical ordering)."""
        if isinstance(table, IntervalBindingTable):
            families = families_to_wire(table.families)
            total = len(families)
            if limit is not None:
                families = families[:limit]
            return {
                "kind": "families",
                "families": families,
                "num_families": total,
                "output_size": len(table),
            }
        rows = rows_to_wire(table.rows)
        total = len(rows)
        if limit is not None:
            rows = rows[:limit]
        return {
            "kind": "rows",
            "rows": rows,
            "num_rows": total,
            "output_size": len(table),
        }


class ServerState:
    """The named-graph registry plus server-wide configuration."""

    def __init__(
        self,
        *,
        workers: int = 1,
        backend: str = "thread",
        plan_capacity: int = 128,
    ) -> None:
        if backend == "serial":
            # The service maps "serial" to a one-worker thread engine,
            # mirroring the CLI's --backend serial semantics.
            backend, workers = "thread", 1
        self.workers = workers
        self.backend = backend
        self.plan_capacity = plan_capacity
        self.hosts: dict[str, GraphHost] = {}
        self.started = time.time()

    def add_graph(
        self,
        name: str,
        graph_path: Optional[str] = None,
        *,
        wal: Optional[str] = None,
        snapshot: Optional[str] = None,
        snapshot_every: int = 1,
        store: Optional[str] = None,
    ) -> Optional[dict]:
        """Load (or recover) a graph under ``name``; returns the recovery
        report when a snapshot/WAL restart path was taken.  ``store``
        attaches a compiled artifact instead of loading ``graph_path``."""
        if name in self.hosts:
            raise ServerError(f"graph {name!r} is already resident", kind="ServerError")
        host, recovery = GraphHost.from_files(
            name,
            graph_path,
            wal=wal,
            snapshot=snapshot,
            snapshot_every=snapshot_every,
            store=store,
            workers=self.workers,
            backend=self.backend,
            plans=PlanCache(self.plan_capacity),
        )
        self.hosts[name] = host
        return recovery

    def host(self, name: str) -> GraphHost:
        found = self.hosts.get(name)
        if found is None:
            raise EvaluationError(
                f"graph {name!r} is not resident (loaded: "
                f"{', '.join(sorted(self.hosts)) or 'none'})"
            )
        return found

    def stats(self) -> dict:
        return {
            "uptime_seconds": time.time() - self.started,
            "workers": self.workers,
            "backend": self.backend,
            "graphs": {name: host.stats() for name, host in self.hosts.items()},
        }

    def close(self) -> None:
        for host in self.hosts.values():
            host.close()
