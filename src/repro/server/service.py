"""The always-on query service: asyncio TCP front, warm engines behind.

Architecture
------------

One asyncio event loop accepts connections and frames requests (JSON
lines, see :mod:`repro.server.protocol`).  Cheap control ops (``ping``,
``graphs``, ``stats``, ``health``, ``shutdown``) answer inline on the
loop.  Heavy ops (``query``, ``register``, ``table``, ``apply_delta``)
are pushed to a thread-pool executor sized to ``max_concurrency`` — the
engines are synchronous and (under ``backend="process"``) dispatch onto
the shared warm :class:`~repro.parallel.pool.WorkerPool`, so the loop
itself never blocks on evaluation.

Backpressure is admission control, not queueing: when
``max_concurrency`` requests are executing and ``max_queue`` more are
waiting, further heavy requests are rejected *immediately* with an
``Overloaded`` error rather than admitted to an unbounded queue.
Clients see the rejection in bounded time and can back off; latency for
admitted requests stays predictable.

Consistency: requests on one graph serialize on the host lock (see
:mod:`repro.server.state`), so concurrent clients interleaved with
delta writers always observe a clean pre- or post-batch state, and every
answer carries the epoch it was computed at.

Lifecycle and roles (see :mod:`repro.server.replication`)
---------------------------------------------------------

A server is born a **primary** (role ``primary``, status ``ready``) or —
with ``standby_of`` — a **standby**: status ``recovering`` until it has
caught up with the primary's WAL position, then ``standby``.  A standby
serves read-only ops (every answer labelled with its replication lag)
and refuses :data:`~repro.server.protocol.WRITE_OPS` with a structured
``NotPrimary`` naming the primary; on sustained loss of the primary it
fences and **promotes** (role flips to primary, writes open up).

Shutdown is a *drain*, whatever triggers it (``shutdown`` op, SIGTERM,
SIGINT, :meth:`QueryServer.request_drain`): the listener closes first,
in-flight requests finish and their responses reach the socket within
``drain_timeout``, subscribed standbys get a ``close`` frame (their cue
to promote immediately), a final snapshot is written for every host
configured with one, and only then do connections, executor and pools
tear down.  Status reads ``draining`` throughout, and the cheap
``health`` op reports ``recovering | ready | draining | standby`` for
orchestrators and failover clients.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.errors import NotPrimary, Overloaded, ServerError
from repro.server.protocol import (
    OPS,
    PROTOCOL_VERSION,
    WRITE_OPS,
    decode,
    encode,
    error_response,
    ok_response,
)
from repro.server.replication import (
    FAILOVER_AFTER,
    HEARTBEAT_INTERVAL,
    ReplicationHub,
    StandbyRunner,
)
from repro.server.state import ServerState

#: Ops answered inline on the event loop (no executor round-trip).
_CHEAP_OPS = frozenset({"ping", "graphs", "stats", "health", "shutdown"})

#: The longest request line the server will frame (64 MiB) — a delta
#: batch for a large graph fits comfortably; anything bigger is a
#: malformed or hostile client.
_LINE_LIMIT = 64 * 1024 * 1024


class QueryServer:
    """The asyncio service wrapping one :class:`ServerState`."""

    def __init__(
        self,
        state: ServerState,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 4,
        max_queue: int = 16,
        standby_of: Optional[tuple[str, int]] = None,
        drain_timeout: float = 10.0,
        idle_timeout: Optional[float] = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        failover_after: float = FAILOVER_AFTER,
    ) -> None:
        if max_concurrency < 1:
            raise ServerError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue < 0:
            raise ServerError(f"max_queue must be >= 0, got {max_queue}")
        if drain_timeout <= 0:
            raise ServerError(f"drain_timeout must be positive, got {drain_timeout}")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ServerError(f"idle_timeout must be positive, got {idle_timeout}")
        self.state = state
        self.host = host
        self.port = port  # rewritten with the bound port once serving
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.standby_of = standby_of
        self.drain_timeout = drain_timeout
        self.idle_timeout = idle_timeout
        self.role = "primary" if standby_of is None else "standby"
        #: ``recovering | ready | draining | standby`` (the ``health`` op).
        self.status = "ready" if standby_of is None else "recovering"
        self.fence: Optional[dict] = None
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._waiting = 0
        self._rejected = 0
        self._requests = 0
        self._inflight = 0
        self._idle_closed = 0
        self._drains = 0
        self._drain_reason: Optional[str] = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-server"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self.replication = ReplicationHub(
            state, heartbeat_interval=heartbeat_interval, status=lambda: self.status
        )
        self._standby: Optional[StandbyRunner] = None
        self._failover_after = failover_after
        self._heartbeat_interval = heartbeat_interval

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_LINE_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.replication.bind(asyncio.get_running_loop())
        if self.standby_of is not None:
            self._standby = StandbyRunner(
                self,
                self.state,
                self.standby_of,
                heartbeat_interval=self._heartbeat_interval,
                failover_after=self._failover_after,
            )
            self._standby.start()

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`request_drain`)."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self._close()

    def request_drain(self, reason: str = "shutdown requested") -> None:
        """Begin the graceful drain (idempotent; also the shutdown path)."""
        if not self._shutdown.is_set():
            self._drains += 1
            self._drain_reason = reason
            self.status = "draining"
        self._shutdown.set()

    # Kept as an alias: every shutdown is a drain (tests and the
    # BackgroundServer harness call this).
    def request_shutdown(self) -> None:
        self.request_drain()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def primary_address(self) -> Optional[str]:
        """Where writes go: this server if primary, else its upstream."""
        if self.role == "primary" or self.standby_of is None:
            return self.address
        return f"{self.standby_of[0]}:{self.standby_of[1]}"

    # Called by the StandbyRunner (on the event loop).
    def note_caught_up(self) -> None:
        if self.status == "recovering":
            self.status = "standby"

    def promote(self, fence: dict) -> None:
        """Standby → primary: record the fence, open writes."""
        self.fence = fence
        self.role = "primary"
        if self.status in ("recovering", "standby"):
            self.status = "ready"

    async def _close(self) -> None:
        loop = asyncio.get_running_loop()
        # 1. Stop accepting new connections.
        if self._server is not None:
            self._server.close()
        # 2. Let in-flight requests finish AND answer: the counter wraps
        #    the response write, so a request admitted before the drain
        #    reaches its client before any socket is torn down.
        deadline = loop.time() + self.drain_timeout
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        # 3. Tell subscribed standbys the primary is going away — their
        #    cue to promote immediately instead of waiting out the
        #    failover window.
        await self.replication.close_all(self._drain_reason or "shutdown")
        if self._standby is not None:
            await self._standby.stop()
        # 4. Final snapshot: the drained state restarts in O(snapshot)
        #    instead of O(WAL replay).
        await loop.run_in_executor(None, self._final_snapshots)
        # 5. Now the sockets can go.
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True)
        self.state.close()
        # Drain the warm worker pools so a clean shutdown leaves no
        # orphaned processes behind.
        from repro.parallel.pool import shutdown_all

        shutdown_all()

    def _final_snapshots(self) -> None:
        for host in self.state.hosts.values():
            if getattr(host.session, "_snapshot_path", None) is not None:
                try:
                    host.session.snapshot()
                except Exception:  # noqa: BLE001 — drain must not hang on disk
                    pass

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while not self._shutdown.is_set():
                try:
                    if self.idle_timeout is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=self.idle_timeout
                        )
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    # Idle reaper: answer with a close frame, then hang
                    # up — the client sees *why* instead of a bare RST.
                    self._idle_closed += 1
                    writer.write(
                        encode(
                            error_response(
                                f"closing idle connection (no request in "
                                f"{self.idle_timeout:g}s)",
                                kind="ProtocolError",
                            )
                        )
                    )
                    await writer.drain()
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode(error_response("request line too long", kind="ProtocolError"))
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode(line)
                except ValueError as error:
                    writer.write(encode(error_response(error, kind="ProtocolError")))
                    await writer.drain()
                    continue
                if request.get("op") == "replicate.subscribe":
                    # The connection leaves request/response framing and
                    # becomes a replication stream until it drops (idle
                    # timeouts do not apply: heartbeats keep it live).
                    await self.replication.serve_subscriber(request, reader, writer)
                    break
                self._inflight += 1
                try:
                    response = await self._respond(request)
                    writer.write(encode(response))
                    await writer.drain()
                finally:
                    self._inflight -= 1
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # Server teardown cancels connection tasks mid-close; a
                # cancelled close is a closed connection, not an error.
                pass

    async def _respond(self, request: dict) -> dict:
        try:
            return await self._dispatch(request)
        except Exception as error:  # noqa: BLE001 — every failure answers the client
            return error_response(error, request=request)

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op not in OPS:
            raise ServerError(
                f"unknown op {op!r} (expected one of: {', '.join(OPS)})",
                kind="ProtocolError",
            )
        if op == "replicate.ack":
            raise ServerError(
                "replicate.ack is only valid on a subscribed replication stream",
                kind="ProtocolError",
            )
        self._requests += 1
        if op in _CHEAP_OPS:
            return self._control(op, request)
        if op in WRITE_OPS and self.role != "primary":
            raise NotPrimary(
                f"this server is a read-only standby; send writes to the "
                f"primary at {self.primary_address}",
                primary=self.primary_address,
            )
        # Admission control: reject before joining the wait queue.
        if self._semaphore.locked() and self._waiting >= self.max_queue:
            self._rejected += 1
            raise Overloaded(
                f"server at capacity ({self.max_concurrency} executing, "
                f"{self._waiting} queued, max_queue={self.max_queue}); retry later"
            )
        self._waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._executor, self._execute, op, request
            )
        finally:
            self._semaphore.release()
        server = result.get("server")
        if server is not None:
            server = dict(server)
            server["role"] = self.role
            if self._standby is not None and not self._standby.promoted:
                # Standby answers are honest about staleness: the lag
                # between the primary's shipped position and what this
                # replica has applied rides on every response.
                lag = self._standby.lag().get(request.get("graph", "default"))
                if lag is not None:
                    server["replication"] = lag
        return ok_response(result["result"], request=request, server=server)

    # ------------------------------------------------------------------ #
    # Request execution
    # ------------------------------------------------------------------ #
    def _control(self, op: str, request: dict) -> dict:
        if op == "ping":
            return ok_response(
                {"protocol": PROTOCOL_VERSION, "graphs": sorted(self.state.hosts)},
                request=request,
            )
        if op == "graphs":
            return ok_response(sorted(self.state.hosts), request=request)
        if op == "health":
            return ok_response(self.health(), request=request)
        if op == "stats":
            stats = self.state.stats()
            stats["service"] = {
                "requests": self._requests,
                "rejected": self._rejected,
                "inflight": self._inflight,
                "idle_closed": self._idle_closed,
                "drains": self._drains,
                "status": self.status,
                "role": self.role,
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
            }
            stats["replication"] = self.replication.stats()
            if self._standby is not None:
                stats["replication"]["standby"] = {
                    "primary": self.primary_address,
                    "promoted": self._standby.promoted,
                    "lag": self._standby.lag(),
                }
            return ok_response(stats, request=request)
        # op == "shutdown"
        self.request_drain()
        return ok_response({"stopping": True}, request=request)

    def health(self) -> dict:
        """The cheap liveness/role report (also the failover beacon)."""
        report = {
            "status": self.status,
            "role": self.role,
            "protocol": PROTOCOL_VERSION,
            "address": self.address,
            "primary": self.primary_address,
            "epochs": {
                name: host.session.epoch for name, host in self.state.hosts.items()
            },
        }
        if self._standby is not None:
            report["replication"] = self._standby.lag()
        if self.fence is not None:
            report["fence"] = self.fence
        return report

    def _execute(self, op: str, request: dict) -> dict:
        """Run one heavy op on an executor thread (blocking is fine here)."""
        host = self.state.host(request.get("graph", "default"))
        if op == "query":
            text = request.get("query")
            if not isinstance(text, str) or not text.strip():
                raise ServerError("query op requires a non-empty 'query' string")
            deadline = request.get("deadline")
            if deadline is not None and float(deadline) <= 0:
                raise ServerError(f"deadline must be positive, got {deadline}")
            retries = request.get("retries")
            if retries is not None and int(retries) < 0:
                raise ServerError(f"retries must be >= 0, got {retries}")
            return host.query(
                text,
                deadline=None if deadline is None else float(deadline),
                retries=None if retries is None else int(retries),
                limit=request.get("limit"),
            )
        if op == "register":
            text = request.get("query")
            if not isinstance(text, str) or not text.strip():
                raise ServerError("register op requires a non-empty 'query' string")
            return host.register(text, name=request.get("name"))
        if op == "table":
            name = request.get("name")
            if not isinstance(name, str):
                raise ServerError("table op requires a 'name' string")
            return host.table(name, limit=request.get("limit"))
        # op == "apply_delta"
        batch = request.get("batch")
        if not isinstance(batch, dict):
            raise ServerError("apply_delta op requires a 'batch' object")
        return host.apply_delta(batch)


def serve(
    state: ServerState,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    on_listening=None,
    install_signal_handlers: bool = True,
    **options,
) -> None:
    """Run the service on a fresh event loop until shutdown (blocking).

    ``SIGTERM`` and ``SIGINT`` trigger the graceful drain when handlers
    can be installed (the main thread of the serving process — the
    in-process :class:`BackgroundServer` harness runs on a daemon thread,
    where registration is silently skipped).
    """

    async def _run() -> None:
        server = QueryServer(state, host=host, port=port, **options)
        await server.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        sig, server.request_drain, f"signal {sig.name}"
                    )
                except (NotImplementedError, RuntimeError, ValueError):
                    # Not the main thread, or the platform has no
                    # loop-integrated signals: lifecycle still works via
                    # the shutdown op / request_drain().
                    pass
        if on_listening is not None:
            on_listening(server)
        await server.serve_until_shutdown()

    asyncio.run(_run())


class BackgroundServer:
    """The in-process harness tests and benchmarks drive the service with.

    Runs :func:`serve` on a daemon thread and exposes the bound address
    once listening::

        with BackgroundServer(state) as server:
            client = ServerClient(server.host, server.port)
            ...
    """

    def __init__(self, state: ServerState, **options) -> None:
        self._state = state
        self._options = options
        self._ready = threading.Event()
        self._server: Optional[QueryServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        def listening(server: QueryServer) -> None:
            self._server = server
            self._loop = asyncio.get_running_loop()
            self._ready.set()

        try:
            serve(self._state, on_listening=listening, **self._options)
        finally:
            self._ready.set()  # unblock start() even if binding failed

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._server is None:
            raise ServerError("background server failed to start")
        return self

    @property
    def host(self) -> str:
        assert self._server is not None
        return self._server.host

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.port

    @property
    def server(self) -> QueryServer:
        assert self._server is not None
        return self._server

    def stop(self, timeout: float = 30) -> None:
        if self._server is not None and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed: the server is already down
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
