"""The always-on query service: asyncio TCP front, warm engines behind.

Architecture
------------

One asyncio event loop accepts connections and frames requests (JSON
lines, see :mod:`repro.server.protocol`).  Cheap control ops (``ping``,
``graphs``, ``stats``, ``shutdown``) answer inline on the loop.  Heavy
ops (``query``, ``register``, ``table``, ``apply_delta``) are pushed to
a thread-pool executor sized to ``max_concurrency`` — the engines are
synchronous and (under ``backend="process"``) dispatch onto the shared
warm :class:`~repro.parallel.pool.WorkerPool`, so the loop itself never
blocks on evaluation.

Backpressure is admission control, not queueing: when
``max_concurrency`` requests are executing and ``max_queue`` more are
waiting, further heavy requests are rejected *immediately* with an
``Overloaded`` error rather than admitted to an unbounded queue.
Clients see the rejection in bounded time and can back off; latency for
admitted requests stays predictable.

Consistency: requests on one graph serialize on the host lock (see
:mod:`repro.server.state`), so concurrent clients interleaved with
delta writers always observe a clean pre- or post-batch state, and every
answer carries the epoch it was computed at.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.errors import Overloaded, ServerError
from repro.server.protocol import (
    OPS,
    PROTOCOL_VERSION,
    decode,
    encode,
    error_response,
    ok_response,
)
from repro.server.state import ServerState

#: Ops answered inline on the event loop (no executor round-trip).
_CHEAP_OPS = frozenset({"ping", "graphs", "stats", "shutdown"})

#: The longest request line the server will frame (64 MiB) — a delta
#: batch for a large graph fits comfortably; anything bigger is a
#: malformed or hostile client.
_LINE_LIMIT = 64 * 1024 * 1024


class QueryServer:
    """The asyncio service wrapping one :class:`ServerState`."""

    def __init__(
        self,
        state: ServerState,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 4,
        max_queue: int = 16,
    ) -> None:
        if max_concurrency < 1:
            raise ServerError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue < 0:
            raise ServerError(f"max_queue must be >= 0, got {max_queue}")
        self.state = state
        self.host = host
        self.port = port  # rewritten with the bound port once serving
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._waiting = 0
        self._rejected = 0
        self._requests = 0
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-server"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_LINE_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self._close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True)
        self.state.close()
        # Drain the warm worker pools so a clean shutdown leaves no
        # orphaned processes behind.
        from repro.parallel.pool import shutdown_all

        shutdown_all()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode(error_response("request line too long", kind="ProtocolError"))
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._respond(line)
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # Server teardown cancels connection tasks mid-close; a
                # cancelled close is a closed connection, not an error.
                pass

    async def _respond(self, line: bytes) -> dict:
        try:
            request = decode(line)
        except ValueError as error:
            return error_response(error, kind="ProtocolError")
        try:
            return await self._dispatch(request)
        except Exception as error:  # noqa: BLE001 — every failure answers the client
            return error_response(error, request=request)

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op not in OPS:
            raise ServerError(
                f"unknown op {op!r} (expected one of: {', '.join(OPS)})",
                kind="ProtocolError",
            )
        self._requests += 1
        if op in _CHEAP_OPS:
            return self._control(op, request)
        # Admission control: reject before joining the wait queue.
        if self._semaphore.locked() and self._waiting >= self.max_queue:
            self._rejected += 1
            raise Overloaded(
                f"server at capacity ({self.max_concurrency} executing, "
                f"{self._waiting} queued, max_queue={self.max_queue}); retry later"
            )
        self._waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._executor, self._execute, op, request
            )
        finally:
            self._semaphore.release()
        return ok_response(
            result["result"], request=request, server=result.get("server")
        )

    # ------------------------------------------------------------------ #
    # Request execution
    # ------------------------------------------------------------------ #
    def _control(self, op: str, request: dict) -> dict:
        if op == "ping":
            return ok_response(
                {"protocol": PROTOCOL_VERSION, "graphs": sorted(self.state.hosts)},
                request=request,
            )
        if op == "graphs":
            return ok_response(sorted(self.state.hosts), request=request)
        if op == "stats":
            stats = self.state.stats()
            stats["service"] = {
                "requests": self._requests,
                "rejected": self._rejected,
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
            }
            return ok_response(stats, request=request)
        # op == "shutdown"
        self.request_shutdown()
        return ok_response({"stopping": True}, request=request)

    def _execute(self, op: str, request: dict) -> dict:
        """Run one heavy op on an executor thread (blocking is fine here)."""
        host = self.state.host(request.get("graph", "default"))
        if op == "query":
            text = request.get("query")
            if not isinstance(text, str) or not text.strip():
                raise ServerError("query op requires a non-empty 'query' string")
            deadline = request.get("deadline")
            if deadline is not None and float(deadline) <= 0:
                raise ServerError(f"deadline must be positive, got {deadline}")
            retries = request.get("retries")
            if retries is not None and int(retries) < 0:
                raise ServerError(f"retries must be >= 0, got {retries}")
            return host.query(
                text,
                deadline=None if deadline is None else float(deadline),
                retries=None if retries is None else int(retries),
                limit=request.get("limit"),
            )
        if op == "register":
            text = request.get("query")
            if not isinstance(text, str) or not text.strip():
                raise ServerError("register op requires a non-empty 'query' string")
            return host.register(text, name=request.get("name"))
        if op == "table":
            name = request.get("name")
            if not isinstance(name, str):
                raise ServerError("table op requires a 'name' string")
            return host.table(name, limit=request.get("limit"))
        # op == "apply_delta"
        batch = request.get("batch")
        if not isinstance(batch, dict):
            raise ServerError("apply_delta op requires a 'batch' object")
        return host.apply_delta(batch)


def serve(
    state: ServerState,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_concurrency: int = 4,
    max_queue: int = 16,
    on_listening=None,
) -> None:
    """Run the service on a fresh event loop until shutdown (blocking)."""

    async def _run() -> None:
        server = QueryServer(
            state,
            host=host,
            port=port,
            max_concurrency=max_concurrency,
            max_queue=max_queue,
        )
        await server.start()
        if on_listening is not None:
            on_listening(server)
        await server.serve_until_shutdown()

    asyncio.run(_run())


class BackgroundServer:
    """The in-process harness tests and benchmarks drive the service with.

    Runs :func:`serve` on a daemon thread and exposes the bound address
    once listening::

        with BackgroundServer(state) as server:
            client = ServerClient(server.host, server.port)
            ...
    """

    def __init__(self, state: ServerState, **options) -> None:
        self._state = state
        self._options = options
        self._ready = threading.Event()
        self._server: Optional[QueryServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        def listening(server: QueryServer) -> None:
            self._server = server
            self._loop = asyncio.get_running_loop()
            self._ready.set()

        try:
            serve(self._state, on_listening=listening, **self._options)
        finally:
            self._ready.set()  # unblock start() even if binding failed

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._server is None:
            raise ServerError("background server failed to start")
        return self

    @property
    def host(self) -> str:
        assert self._server is not None
        return self._server.host

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.port

    def stop(self, timeout: float = 30) -> None:
        if self._server is not None and self._loop is not None:
            self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
