"""The always-on query service: resident graphs, compiled-plan cache.

Public surface::

    from repro.server import ServerState, QueryServer, BackgroundServer, serve
    from repro.server import ServerClient, PlanCache

See PERFORMANCE.md (Serving) for why residency pays, and RELIABILITY.md
for the wire protocol and operational semantics.
"""

from repro.server.client import IDEMPOTENT_OPS, ServerClient
from repro.server.plans import PlanCache
from repro.server.protocol import OPS, PROTOCOL_VERSION, WRITE_OPS, normalize_query
from repro.server.replication import ReplicationHub, StandbyRunner
from repro.server.service import BackgroundServer, QueryServer, serve
from repro.server.state import GraphHost, ServerState

__all__ = [
    "BackgroundServer",
    "GraphHost",
    "IDEMPOTENT_OPS",
    "OPS",
    "PROTOCOL_VERSION",
    "PlanCache",
    "QueryServer",
    "ReplicationHub",
    "ServerClient",
    "ServerState",
    "StandbyRunner",
    "WRITE_OPS",
    "normalize_query",
    "serve",
]
