"""Coalescing, set-at-a-time frontier and interval-native materialization.

The seed dataflow engine threaded a flat ``list[Row]`` through the chain
steps: every structural move appended one row per edge, so two distinct
paths reaching the same object with the same bindings produced two rows
that differed only in their validity intervals.  Bounded temporal
navigation (Q11/Q12) then multiplied the per-row work again, which is
exactly the point-style blow-up the paper's interval representation
(Theorem C.1) exists to avoid.

This module replaces that list with two structures:

* :class:`Frontier` — a set-at-a-time collector that keys rows by their
  *binding signature* (everything observable about a row except the last
  group's validity times: bindings, current objects, earlier groups'
  times and the temporal links) and eagerly merges the validity
  ``IntervalSet``\\ s of signature-equal rows.  After every step the
  frontier holds at most one live row per signature, and every stored
  interval family is coalesced.
* :class:`IntervalMaterializer` — Step 3 without the point-by-point
  ``TemporalLink.admits`` walk.  A backward *alive* pass prunes, with
  pure interval arithmetic, every time point that cannot complete the
  chain; a forward *reach* pass propagates admissible times across
  groups.  Groups that bind no variable are projected out wholesale
  (their times never get enumerated), and rows whose variables all live
  in one temporal group produce a coalesced ``(bindings, IntervalSet)``
  *family* directly — the representation behind
  :meth:`~repro.dataflow.executor.DataflowEngine.match_intervals`, from
  which the point-based row table is derived.

:class:`RowFrontier` preserves the seed list behaviour behind
``DataflowEngine(use_coalesced=False)`` so the regression benchmark can
measure the gap honestly.

Merging only the *last* group's times is exact: materialization
enumerates group times left to right and the link predicate is pointwise
in the last time, so for rows agreeing on everything else the outputs of
the merged row are exactly the union of the outputs of the originals.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Optional

from repro.dataflow.frontier import Row, TemporalLink
from repro.errors import EvaluationError
from repro.model.itpg import IntervalTPG
from repro.perf.graph_index import GraphIndex
from repro.temporal.alignment import reachable_sources, reachable_window
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet, IntervalSetAccumulator

ObjectId = Hashable
#: One coalesced output entry: variable bindings plus shared validity times.
IntervalFamily = tuple[tuple[tuple[str, ObjectId], ...], IntervalSet]


def row_signature(
    row: Row, object_id: Optional[Mapping[ObjectId, int]] = None
) -> tuple:
    """The binding signature of a frontier row.

    Two rows with equal signatures are interchangeable for every later
    chain step and for materialization, except for their last group's
    validity times — which is precisely the component the coalescing
    frontier merges.  With a :class:`~repro.perf.graph_index.GraphIndex`
    available, objects are interned through its dense ``object_id``
    table so signatures hash over small integers instead of raw
    identifiers.
    """
    groups = row.groups
    if len(groups) == 1:
        # Pre-temporal-navigation rows (the hot case): no links, no head
        # groups — the signature is just bindings + current object.
        last = groups[0]
        if object_id is None:
            return (last.bindings, last.current)
        return (
            tuple((name, object_id[obj]) for name, obj in last.bindings),
            object_id[last.current],
        )
    if object_id is None:
        parts = [(g.bindings, g.current, g.times) for g in groups[:-1]]
        last = groups[-1]
        parts.append((last.bindings, last.current, None))
    else:
        parts = [
            (
                tuple((name, object_id[obj]) for name, obj in g.bindings),
                object_id[g.current],
                g.times,
            )
            for g in groups[:-1]
        ]
        last = groups[-1]
        parts.append(
            (
                tuple((name, object_id[obj]) for name, obj in last.bindings),
                object_id[last.current],
                None,
            )
        )
    return (tuple(parts), row.links)


class RowFrontier:
    """The seed frontier: a flat list that keeps every produced row."""

    __slots__ = ("_rows", "rows_added")

    def __init__(self) -> None:
        self._rows: list[Row] = []
        self.rows_added = 0

    @property
    def rows_merged(self) -> int:
        return 0

    def add(self, row: Row) -> None:
        self.rows_added += 1
        self._rows.append(row)

    def rows(self) -> list[Row]:
        return self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)


class Frontier:
    """A set-at-a-time frontier keyed by binding signature.

    ``add`` either stores a new row or merges the incoming row's last
    validity family into the signature's accumulator; merged families
    are coalesced once per signature when the rows are next read (an
    amortized single pass via :class:`IntervalSetAccumulator` instead of
    repeated pairwise unions).  The frontier therefore maintains two
    invariants between steps:

    * no two live rows share a binding signature;
    * every stored interval family satisfies the FC (coalesced)
      invariant.
    """

    __slots__ = ("_rows", "_pending", "_object_id", "rows_added", "rows_merged")

    def __init__(self, object_id: Optional[Mapping[ObjectId, int]] = None) -> None:
        self._rows: dict[tuple, Row] = {}
        self._pending: dict[tuple, IntervalSetAccumulator] = {}
        self._object_id = object_id
        self.rows_added = 0
        self.rows_merged = 0

    def add(self, row: Row) -> None:
        self.rows_added += 1
        key = row_signature(row, self._object_id)
        existing = self._rows.get(key)
        if existing is None:
            self._rows[key] = row
            return
        self.rows_merged += 1
        accumulator = self._pending.get(key)
        if accumulator is None:
            accumulator = IntervalSetAccumulator()
            accumulator.add(existing.last.times)
            self._pending[key] = accumulator
        accumulator.add(row.last.times)

    def _flush(self) -> None:
        if not self._pending:
            return
        for key, accumulator in self._pending.items():
            row = self._rows[key]
            self._rows[key] = row.replace_last(
                row.last.with_times(accumulator.build())
            )
        self._pending.clear()

    def rows(self) -> list[Row]:
        self._flush()
        return list(self._rows.values())

    def signatures(self) -> list[tuple]:
        """The live signatures (test hook for the uniqueness invariant)."""
        return list(self._rows)

    def __iter__(self) -> Iterator[Row]:
        self._flush()
        return iter(self._rows.values())

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)


class IntervalMaterializer:
    """Interval-native Step 3: from frontier rows to bindings.

    All link reasoning happens through
    :func:`~repro.temporal.alignment.reachable_window`, whose aggregate
    union is exact, so the passes below never consult the point-level
    :meth:`~repro.dataflow.frontier.TemporalLink.admits` predicate:

    * :meth:`alive_sets` — backward pass; ``alive[i]`` is the subset of
      group ``i``'s times from which the remaining links can all be
      satisfied.  Enumerating only alive points makes every recursion
      branch productive (no dead-end prefixes).
    * :meth:`row_family` — when at most one group binds variables, the
      forward pass stays aggregated end to end and the row's entire
      output is one coalesced ``(bindings, IntervalSet)`` family.
    * :meth:`row_points` — the general case enumerates points only for
      groups that bind variables; unbound groups are projected through
      as whole interval sets.
    """

    def __init__(self, graph: IntervalTPG, index: Optional[GraphIndex] = None) -> None:
        self._graph = graph
        self._index = index
        self._domain = graph.domain
        #: Armed by the owning engine per query; when set, the
        #: frontier-level drivers tick it per row so a deadline can fire
        #: during Step 3 (output can dwarf the chain run).
        self.deadline = None

    # ------------------------------------------------------------------ #
    # Link propagation primitives
    # ------------------------------------------------------------------ #
    def _existence(self, obj: ObjectId) -> IntervalSet:
        if self._index is not None:
            return self._index.existence[obj]
        return self._graph.existence(obj)

    def link_targets(self, link: TemporalLink, anchors: IntervalSet) -> IntervalSet:
        """All times reachable from any anchor time through ``link``."""
        existence = self._existence(link.obj)
        accumulator = IntervalSetAccumulator()
        for anchor in anchors:
            for _piece, window in reachable_window(
                anchor,
                existence,
                link.lower,
                link.upper,
                link.forward,
                link.contiguous,
                self._domain,
            ):
                accumulator.add_interval(window)
        return accumulator.build()

    def link_sources(self, link: TemporalLink, targets: IntervalSet) -> IntervalSet:
        """All times from which some target time is reachable through ``link``.

        Uses :func:`~repro.temporal.alignment.reachable_sources` — for
        contiguous links the inverse is *not* a direction flip, because
        the visited points exclude the anchor but include the endpoint.
        """
        existence = self._existence(link.obj)
        accumulator = IntervalSetAccumulator()
        for piece in targets:
            for window in reachable_sources(
                piece,
                existence,
                link.lower,
                link.upper,
                link.forward,
                link.contiguous,
                self._domain,
            ):
                accumulator.add_interval(window)
        return accumulator.build()

    def _point_next(
        self, link: TemporalLink, t: int, restrict: IntervalSet
    ) -> IntervalSet:
        """Exact targets reachable from the single point ``t``, ∩ ``restrict``.

        The hot inner call of bound-group enumeration: a point anchor
        touches at most one existence run, so the window arithmetic is
        done inline with one binary-search run lookup instead of the
        general per-family machinery of :meth:`link_targets`.
        """
        lo, hi, forward = link.lower, link.upper, link.forward
        domain = self._domain
        if not link.contiguous:
            if forward:
                window_lo = t + lo
                window_hi = domain.end if hi is None else t + hi
            else:
                window_hi = t - lo
                window_lo = domain.start if hi is None else t - hi
            window_lo = max(window_lo, domain.start)
            window_hi = min(window_hi, domain.end)
            if window_lo > window_hi:
                return IntervalSet.empty()
            return restrict.intersect_interval(Interval(window_lo, window_hi))
        pieces: list[Interval] = []
        min_moves = max(lo, 1)
        if hi is None or hi >= 1:
            # All visited points share the run containing the first one.
            first = t + 1 if forward else t - 1
            run = self._existence(link.obj).interval_containing(first)
            if run is not None:
                if forward:
                    window_lo = t + min_moves
                    window_hi = run.end if hi is None else min(run.end, t + hi)
                else:
                    window_hi = t - min_moves
                    window_lo = run.start if hi is None else max(run.start, t - hi)
                if window_lo <= window_hi:
                    pieces.extend(
                        restrict.intersect_interval(
                            Interval(window_lo, window_hi)
                        ).intervals
                    )
        if lo == 0 and restrict.contains_point(t):
            pieces.append(Interval.point(t))
        if not pieces:
            return IntervalSet.empty()
        if len(pieces) == 1:
            return IntervalSet._from_coalesced(pieces)
        return IntervalSet(pieces)

    # ------------------------------------------------------------------ #
    # Backward (alive) and forward (reach) passes
    # ------------------------------------------------------------------ #
    def alive_sets(self, row: Row) -> list[IntervalSet]:
        """Per group, the times from which the suffix of links is satisfiable."""
        groups = row.groups
        alive: list[IntervalSet] = [IntervalSet.empty()] * len(groups)
        alive[-1] = groups[-1].times
        for i in range(len(groups) - 2, -1, -1):
            successors = alive[i + 1]
            if successors.is_empty():
                alive[i] = IntervalSet.empty()
                continue
            alive[i] = groups[i].times.intersect(
                self.link_sources(row.links[i], successors)
            )
        return alive

    def _bound_groups(
        self, row: Row, variables: tuple[str, ...]
    ) -> tuple[dict[str, tuple[int, ObjectId]], list[int]]:
        positions = row.variable_positions()
        missing = [v for v in variables if v not in positions]
        if missing:
            raise EvaluationError(f"variables {missing} were never bound")
        return positions, sorted({positions[v][0] for v in variables})

    def row_family(
        self, row: Row, variables: tuple[str, ...]
    ) -> Optional[IntervalFamily]:
        """The row's coalesced output family, or ``None`` if it has no output.

        Defined only when every variable is bound within a single
        temporal group (all bindings then share one matching time);
        raises :class:`EvaluationError` otherwise — those rows cannot be
        coalesced, as discussed in Section VI.
        """
        positions, bound = self._bound_groups(row, variables)
        if len(bound) > 1:
            raise EvaluationError(
                "interval (coalesced) output is only defined when every variable "
                "is bound within a single temporal group"
            )
        bindings = tuple((v, positions[v][1]) for v in variables)
        if len(row.groups) == 1:
            times = row.last.times
            return (bindings, times) if not times.is_empty() else None
        alive = self.alive_sets(row)
        reach = alive[0]
        target = bound[0] if bound else 0
        for i in range(target):
            if reach.is_empty():
                return None
            reach = self.link_targets(row.links[i], reach).intersect(alive[i + 1])
        if reach.is_empty():
            return None
        return bindings, reach

    def row_points(
        self, row: Row, variables: tuple[str, ...]
    ) -> Iterator[tuple[tuple[ObjectId, int], ...]]:
        """The row's point-based output tuples (general Step 3).

        Deduplicated per bound-group assignment: unbound groups never
        multiply the yielded rows.
        """
        positions, bound = self._bound_groups(row, variables)
        if len(bound) <= 1:
            family = self.row_family(row, variables)
            if family is None:
                return
            bindings, times = family
            if not variables:
                # No columns: one empty row records that the chain matched.
                yield ()
                return
            # All variables share one group, so every binding carries the
            # same matching time.
            objects = tuple(obj for _name, obj in bindings)
            for t in times.points():
                yield tuple((obj, t) for obj in objects)
            return

        alive = self.alive_sets(row)
        if alive[0].is_empty():
            return
        bound_set = set(bound)
        last_bound = bound[-1]
        var_slots = tuple((positions[v][0], positions[v][1]) for v in variables)
        chosen: dict[int, int] = {}

        def emit() -> tuple[tuple[ObjectId, int], ...]:
            return tuple((obj, chosen[g]) for g, obj in var_slots)

        def recurse(i: int, times: IntervalSet) -> Iterator[tuple]:
            if i in bound_set:
                for t in times.points():
                    chosen[i] = t
                    if i == last_bound:
                        # alive-intersected times guarantee the suffix of
                        # links is satisfiable; nothing left to check.
                        yield emit()
                        continue
                    nxt = self._point_next(row.links[i], t, alive[i + 1])
                    if not nxt.is_empty():
                        yield from recurse(i + 1, nxt)
            else:
                nxt = self.link_targets(row.links[i], times).intersect(alive[i + 1])
                if not nxt.is_empty():
                    yield from recurse(i + 1, nxt)

        yield from recurse(0, alive[0])

    # ------------------------------------------------------------------ #
    # Frontier-level drivers
    # ------------------------------------------------------------------ #
    def families(
        self, rows: Iterable[Row], variables: tuple[str, ...]
    ) -> list[IntervalFamily]:
        """Coalesced per-binding families for a whole frontier.

        Families of rows with equal bindings (reached through different
        unbound paths) are merged, so the result has exactly one entry
        per distinct binding tuple.
        """
        deadline = self.deadline
        merged: dict[tuple, list[IntervalSet]] = {}
        for row in rows:
            if deadline is not None:
                deadline.tick()
            family = self.row_family(row, variables)
            if family is None:
                continue
            bindings, times = family
            merged.setdefault(bindings, []).append(times)
        return [
            (bindings, IntervalSet.union_many(families))
            for bindings, families in merged.items()
        ]

    def points(
        self, rows: Iterable[Row], variables: tuple[str, ...]
    ) -> list[tuple[tuple[ObjectId, int], ...]]:
        """Point-based output tuples for a whole frontier."""
        deadline = self.deadline
        out: list[tuple[tuple[ObjectId, int], ...]] = []
        for row in rows:
            if deadline is not None:
                deadline.tick()
            out.extend(self.row_points(row, variables))
        return out
