"""The canonical queries Q1–Q12 of Section IV.

Each entry records the MATCH text exactly as the paper presents it (up to
whitespace), a short description, and metadata used by the benchmark
harnesses: whether the query uses temporal navigation (Table II separates
interval-only queries Q1–Q5 from Q6–Q12) and whether it selects on the
``test = 'pos'`` property (those are the queries swept in the
positivity-rate experiment, Figure 5).

Q10–Q12 contain a bounded temporal-navigation operator; the Figure-4
experiment varies its upper bound ``m``, so those entries are exposed as
templates parameterized by ``m`` via :func:`get_query`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperQuery:
    """One of the paper's numbered queries."""

    name: str
    text: str
    description: str
    uses_temporal_navigation: bool
    uses_positivity: bool
    temporal_bound: int | None = None

    def with_bound(self, bound: int) -> "PaperQuery":
        """Instantiate the temporal-navigation bound (Figure 4 sweep)."""
        if self.temporal_bound is None:
            raise ValueError(f"{self.name} has no temporal-navigation bound to vary")
        return PaperQuery(
            name=self.name,
            text=self.text.replace(f"[0,{self.temporal_bound}]", f"[0,{bound}]"),
            description=self.description,
            uses_temporal_navigation=self.uses_temporal_navigation,
            uses_positivity=self.uses_positivity,
            temporal_bound=bound,
        )


PAPER_QUERIES: dict[str, PaperQuery] = {
    "Q1": PaperQuery(
        "Q1",
        "MATCH (x:Person) ON contact_tracing",
        "all people, at every time point they exist",
        uses_temporal_navigation=False,
        uses_positivity=False,
    ),
    "Q2": PaperQuery(
        "Q2",
        "MATCH (x:Person {risk = 'low'}) ON contact_tracing",
        "low-risk people",
        uses_temporal_navigation=False,
        uses_positivity=False,
    ),
    "Q3": PaperQuery(
        "Q3",
        "MATCH (x:Person {risk = 'low' AND time = '1'}) ON contact_tracing",
        "low-risk people at time point 1",
        uses_temporal_navigation=False,
        uses_positivity=False,
    ),
    "Q4": PaperQuery(
        "Q4",
        "MATCH (x:Person {risk = 'low' AND time < '10'}) ON contact_tracing",
        "low-risk people before time 10",
        uses_temporal_navigation=False,
        uses_positivity=False,
    ),
    "Q5": PaperQuery(
        "Q5",
        "MATCH (x:Person {risk = 'low'})-[z:meets]->(y:Person {risk = 'high'}) "
        "ON contact_tracing",
        "low-risk people meeting high-risk people, with the meeting edge",
        uses_temporal_navigation=False,
        uses_positivity=False,
    ),
    "Q6": PaperQuery(
        "Q6",
        "MATCH (x:Person {test = 'pos'})-/PREV/-(y:Person) ON contact_tracing",
        "people who tested positive, one time point before the test",
        uses_temporal_navigation=True,
        uses_positivity=True,
    ),
    "Q7": PaperQuery(
        "Q7",
        "MATCH (x:Person {test = 'pos'})-/PREV/FWD/:visits/FWD/-(z:Room) "
        "ON contact_tracing",
        "room visited immediately before a positive test",
        uses_temporal_navigation=True,
        uses_positivity=True,
    ),
    "Q8": PaperQuery(
        "Q8",
        "MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) "
        "ON contact_tracing",
        "rooms visited at or before the time of a positive test",
        uses_temporal_navigation=True,
        uses_positivity=True,
    ),
    "Q9": PaperQuery(
        "Q9",
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) "
        "ON contact_tracing",
        "high-risk people who met someone who subsequently tested positive",
        uses_temporal_navigation=True,
        uses_positivity=True,
    ),
    "Q10": PaperQuery(
        "Q10",
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/PREV[0,12]/-({test = 'pos'}) "
        "ON contact_tracing",
        "high-risk people who met someone who tested positive up to an hour before",
        uses_temporal_navigation=True,
        uses_positivity=True,
        temporal_bound=12,
    ),
    "Q11": PaperQuery(
        "Q11",
        "MATCH (x:Person {risk = 'high'})-"
        "/FWD/:visits/FWD/:Room/BWD/:visits/BWD/NEXT[0,12]/-({test = 'pos'}) "
        "ON contact_tracing",
        "high-risk people sharing a room with someone who tested positive soon after",
        uses_temporal_navigation=True,
        uses_positivity=True,
        temporal_bound=12,
    ),
    "Q12": PaperQuery(
        "Q12",
        "MATCH (x:Person {risk = 'high'})-"
        "/(FWD/:meets/FWD + FWD/:visits/FWD/:Room/BWD/:visits/BWD)/NEXT[0,12]/-"
        "({test = 'pos'}) ON contact_tracing",
        "close contact via a meeting or a shared room, followed by a positive test",
        uses_temporal_navigation=True,
        uses_positivity=True,
        temporal_bound=12,
    ),
}


def get_query(name: str, temporal_bound: int | None = None) -> PaperQuery:
    """Look up a paper query by name, optionally overriding its temporal bound."""
    query = PAPER_QUERIES[name]
    if temporal_bound is not None:
        query = query.with_bound(temporal_bound)
    return query


def query_names() -> list[str]:
    """The query names in the paper's order."""
    return list(PAPER_QUERIES)
