"""Compilation of NavL path expressions into dataflow chain steps.

The dataflow engine evaluates *chains*: linear sequences of steps where

* a :class:`TestStep` filters the validity times of the current object,
* a :class:`StructStep` moves across an edge (``F``/``B``) within the
  same snapshot,
* a :class:`TemporalStep` moves the same object through time by a
  bounded or unbounded number of steps (``N``/``P`` with occurrence
  indicators, every visited point required to exist),
* an :class:`AltStep` evaluates alternative sub-chains (union).

:func:`compile_chain` turns a NavL[PC,NOI] expression produced by the
practical-syntax parser into such a chain, or raises
:class:`~repro.errors.UnsupportedFragmentError` if the expression falls
outside the implemented fragment (path conditions, repetition over
structural navigation) — those queries are handled by the reference
engine instead.

:func:`condition_times` evaluates a static test for a fixed object as a
set of validity intervals, which is what lets the engine stay in the
interval representation during Steps 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.errors import UnsupportedFragmentError
from repro.lang.ast import (
    AndTest,
    Axis,
    Concat,
    EdgeTest,
    ExistsTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PathExpr,
    PathTest,
    PropEq,
    Repeat,
    Test,
    TestPath,
    TimeLt,
    TrueTest,
    Union,
)
from repro.model.itpg import IntervalTPG
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

ObjectId = Hashable


# --------------------------------------------------------------------- #
# Step classes
# --------------------------------------------------------------------- #
class ChainStep:
    """Base class of dataflow chain steps."""

    __slots__ = ()


@dataclass(frozen=True)
class TestStep(ChainStep):
    """Filter the current group's validity times with a static condition."""

    __test__ = False  # not a pytest test class despite the name

    condition: Test


@dataclass(frozen=True)
class StructStep(ChainStep):
    """Structural move: ``forward=True`` is ``F``, ``forward=False`` is ``B``."""

    forward: bool


@dataclass(frozen=True)
class TemporalStep(ChainStep):
    """Temporal move on the same object.

    ``forward=True`` is ``NEXT``-like, ``forward=False`` is ``PREV``-like.
    ``lower``/``upper`` bound the number of one-point moves (``upper``
    ``None`` means unbounded).  ``require_existence`` records whether
    every visited time point (excluding the anchor) must exist — true for
    every expression produced by the practical syntax.

    ``target_conditions`` holds static tests fused into the step by
    :func:`fuse_hops` (coalesced engine only): the reached times are
    intersected with their satisfaction times, and — because the tests
    are evaluated from memoized condition tables keyed by object — rows
    whose object cannot satisfy them skip the window arithmetic
    entirely.
    """

    forward: bool
    lower: int
    upper: Optional[int]
    require_existence: bool = True
    target_conditions: tuple[Test, ...] = ()


@dataclass(frozen=True)
class AltStep(ChainStep):
    """Union: evaluate each alternative sub-chain and merge the results."""

    alternatives: tuple[tuple[ChainStep, ...], ...]


@dataclass(frozen=True)
class HopStep(ChainStep):
    """A fused ``Struct · Test* · Struct · Test*`` traversal.

    The coalescing engine rewrites a structural move, the static tests
    on the object it lands on, and the following structural move into a
    single set-at-a-time hop (:func:`fuse_hops`).  Executed through the
    memoized :meth:`~repro.perf.graph_index.GraphIndex.hop_entries`
    table, a hop never materializes one frontier row per traversed
    edge: parallel edges between the same endpoints are pre-unioned
    into one coalesced interval family per ``(source, target)`` pair,
    which is what stops Q11/Q12-style room joins from multiplying
    signature-equal rows.
    """

    forward_in: bool
    mid_conditions: tuple[Test, ...]
    forward_out: bool
    target_conditions: tuple[Test, ...]


@dataclass(frozen=True)
class BindStep(ChainStep):
    """Bind the current object (at the group's times) to a variable."""

    variable: str


# --------------------------------------------------------------------- #
# Chain compilation
# --------------------------------------------------------------------- #
def compile_chain(path: PathExpr) -> tuple[ChainStep, ...]:
    """Flatten a NavL expression into a chain of dataflow steps."""
    return tuple(_flatten(path))


def _flatten(path: PathExpr) -> list[ChainStep]:
    if isinstance(path, TestPath):
        _reject_path_conditions(path.condition)
        return [TestStep(path.condition)]
    if isinstance(path, Axis):
        if path.is_structural:
            return [StructStep(forward=(path.kind == "F"))]
        return [
            TemporalStep(
                forward=(path.kind == "N"), lower=1, upper=1, require_existence=False
            )
        ]
    if isinstance(path, Concat):
        steps: list[ChainStep] = []
        for part in path.parts:
            steps.extend(_flatten(part))
        return _merge_existence(steps)
    if isinstance(path, Union):
        return [AltStep(tuple(tuple(_flatten(part)) for part in path.parts))]
    if isinstance(path, Repeat):
        return [_compile_repeat(path)]
    raise UnsupportedFragmentError(f"cannot compile {path!r} into a dataflow chain")


def _compile_repeat(path: Repeat) -> ChainStep:
    """Only temporal repetition is part of the dataflow fragment."""
    body_steps = _merge_existence(_flatten(path.body))
    if len(body_steps) == 1 and isinstance(body_steps[0], TemporalStep):
        inner = body_steps[0]
        if inner.lower == 1 and inner.upper == 1:
            return TemporalStep(
                forward=inner.forward,
                lower=path.lower,
                upper=path.upper,
                require_existence=inner.require_existence,
            )
    raise UnsupportedFragmentError(
        "the dataflow engine only supports occurrence indicators on temporal "
        f"steps (NEXT/PREV); cannot compile {path!r}"
    )


def _merge_existence(steps: list[ChainStep]) -> list[ChainStep]:
    """Merge ``TemporalStep`` followed by an ``EXISTS`` test into one step.

    The practical syntax translates ``NEXT`` into ``N/∃``; for interval
    processing it is more convenient (and equivalent) to record the
    existence requirement on the temporal step itself.  The merge is
    only valid for exactly-one-move steps (``lower == upper == 1``),
    where "the final point exists" and "every visited point exists"
    coincide.  For a multi-move step, ``require_existence`` demands
    that *every* visited point exists (the ``(N/∃)[n,m]`` semantics)
    whereas a trailing test only constrains the final point
    (``N[n,m]/∃``), so merging wrongly rejects navigation across
    existence gaps; for a zero-move-capable step (``N[0,1]/∃``) the
    trailing test still applies while ``require_existence`` checks
    nothing on the identity branch, so merging wrongly admits
    non-existing anchors.  Both cases were flagged by differential
    cross-checks against the bottom-up ground truth.
    """
    merged: list[ChainStep] = []
    for step in steps:
        if (
            merged
            and isinstance(step, TestStep)
            and isinstance(step.condition, ExistsTest)
            and isinstance(merged[-1], TemporalStep)
            and merged[-1].lower == 1
            and merged[-1].upper == 1
        ):
            previous = merged[-1]
            merged[-1] = TemporalStep(
                forward=previous.forward,
                lower=previous.lower,
                upper=previous.upper,
                require_existence=True,
            )
            continue
        merged.append(step)
    return merged


def _reject_path_conditions(condition: Test) -> None:
    if isinstance(condition, PathTest):
        raise UnsupportedFragmentError(
            "path conditions (?path) are outside the dataflow fragment"
        )
    if isinstance(condition, (AndTest, OrTest)):
        for part in condition.parts:
            _reject_path_conditions(part)
    elif isinstance(condition, NotTest):
        _reject_path_conditions(condition.inner)


def chain_has_temporal_step(steps: tuple[ChainStep, ...]) -> bool:
    """True if any step (including nested alternatives) navigates through time."""
    for step in steps:
        if isinstance(step, TemporalStep):
            return True
        if isinstance(step, AltStep):
            if any(chain_has_temporal_step(alt) for alt in step.alternatives):
                return True
    return False


def chain_structural_radius(steps: tuple[ChainStep, ...]) -> int:
    """Upper bound on the structural moves a chain performs from its seed.

    Structural moves are the only steps that change the current object,
    and the dataflow fragment never repeats them unboundedly
    (:func:`_compile_repeat`), so every object a chain evaluation reads
    lies within this many incidence steps of the seed.  Alternatives
    contribute the maximum over their branches.  This is the radius the
    streaming layer uses to turn a delta's dirty object set into the set
    of seeds whose cached results may change.
    """
    total = 0
    for step in steps:
        if isinstance(step, StructStep):
            total += 1
        elif isinstance(step, HopStep):
            total += 2
        elif isinstance(step, AltStep):
            total += max(
                (chain_structural_radius(alt) for alt in step.alternatives),
                default=0,
            )
    return total


def chain_temporal_radius(steps: tuple[ChainStep, ...]) -> Optional[int]:
    """Upper bound on how far a chain can move through time, or ``None``.

    The sum of the temporal steps' upper bounds: any time point a chain
    evaluation visits is within this distance of a seed time (every
    non-temporal step only intersects the current times).  ``None``
    means unbounded (some step has no upper bound), in which case a
    delta anywhere in time can affect any seed.
    """
    total = 0
    for step in steps:
        if isinstance(step, TemporalStep):
            if step.upper is None:
                return None
            total += step.upper
        elif isinstance(step, AltStep):
            branch_max = 0
            for alt in step.alternatives:
                branch = chain_temporal_radius(alt)
                if branch is None:
                    return None
                branch_max = max(branch_max, branch)
            total += branch_max
    return total


def fuse_hops(
    steps: tuple[ChainStep, ...], is_static: Callable[[Test], bool]
) -> tuple[ChainStep, ...]:
    """Rewrite ``Struct · Test* · Struct [· Test*]`` runs into :class:`HopStep`\\ s.

    Only static tests (decided by ``is_static``) may be folded into a
    hop, and the trailing target tests are left unconsumed when another
    structural step follows them: they are re-emitted as ordinary
    :class:`TestStep`\\ s between the two hops (evaluated on the
    already-coalesced node-level frontier, which is cheap), so chains
    of hops fuse pairwise without overlap.
    Alternatives are fused recursively; every other step is preserved,
    and the rewrite is a pure execution-strategy change (hops evaluate
    to exactly the relation of the steps they replace).
    """
    out: list[ChainStep] = []
    i = 0
    n = len(steps)
    while i < n:
        step = steps[i]
        if isinstance(step, AltStep):
            out.append(
                AltStep(
                    tuple(fuse_hops(alt, is_static) for alt in step.alternatives)
                )
            )
            i += 1
            continue
        if isinstance(step, TemporalStep):
            j = i + 1
            conditions: list[Test] = []
            while (
                j < n
                and isinstance(steps[j], TestStep)
                and is_static(steps[j].condition)
            ):
                conditions.append(steps[j].condition)
                j += 1
            if conditions:
                out.append(
                    TemporalStep(
                        forward=step.forward,
                        lower=step.lower,
                        upper=step.upper,
                        require_existence=step.require_existence,
                        target_conditions=step.target_conditions + tuple(conditions),
                    )
                )
                i = j
                continue
            out.append(step)
            i += 1
            continue
        if isinstance(step, StructStep):
            j = i + 1
            mids: list[Test] = []
            while (
                j < n
                and isinstance(steps[j], TestStep)
                and is_static(steps[j].condition)
            ):
                mids.append(steps[j].condition)
                j += 1
            if j < n and isinstance(steps[j], StructStep):
                second = steps[j]
                j += 1
                targets: list[Test] = []
                while (
                    j < n
                    and isinstance(steps[j], TestStep)
                    and is_static(steps[j].condition)
                ):
                    targets.append(steps[j].condition)
                    j += 1
                if j < n and isinstance(steps[j], StructStep):
                    # Leave the target tests to seed the next hop's mids.
                    j -= len(targets)
                    targets = []
                out.append(
                    HopStep(
                        forward_in=step.forward,
                        mid_conditions=tuple(mids),
                        forward_out=second.forward,
                        target_conditions=tuple(targets),
                    )
                )
                i = j
                continue
        out.append(step)
        i += 1
    return tuple(out)


def bind_group_indices(steps: tuple[ChainStep, ...]) -> Optional[set[int]]:
    """The temporal-group indices at which the chain binds variables.

    Each top-level :class:`TemporalStep` closes the current group and
    opens the next one, so the returned set tells whether all variables
    share one matching time (``len(result) <= 1``) — the condition under
    which the output can stay coalesced.  Returns ``None`` when the
    group index becomes branch-dependent (an :class:`AltStep` whose
    alternatives navigate through time); callers must then decide per
    frontier row.  :class:`BindStep`\\ s never occur inside alternatives
    (alternatives come from path unions, bindings from segments).
    """
    group = 0
    groups: set[int] = set()
    for step in steps:
        if isinstance(step, TemporalStep):
            group += 1
        elif isinstance(step, AltStep):
            if any(chain_has_temporal_step(alt) for alt in step.alternatives):
                return None
        elif isinstance(step, BindStep):
            groups.add(group)
    return groups


# --------------------------------------------------------------------- #
# Static tests as interval sets
# --------------------------------------------------------------------- #
def condition_times(graph: IntervalTPG, obj: ObjectId, condition: Test) -> IntervalSet:
    """The set of time points at which ``(obj, t)`` satisfies ``condition``.

    The result is a coalesced interval family, computed without ever
    expanding the graph to time points — this is the primitive that keeps
    Steps 1 and 2 of the evaluation interval-based.
    """
    domain = graph.domain
    full = IntervalSet((domain,))
    empty = IntervalSet.empty()
    if isinstance(condition, NodeTest):
        return full if graph.is_node(obj) else empty
    if isinstance(condition, EdgeTest):
        return full if graph.is_edge(obj) else empty
    if isinstance(condition, LabelTest):
        return full if graph.label(obj) == condition.label else empty
    if isinstance(condition, PropEq):
        return graph.property_family(obj, condition.prop).when_equals(condition.value)
    if isinstance(condition, TimeLt):
        if condition.bound <= domain.start:
            return empty
        return IntervalSet((Interval(domain.start, min(domain.end, condition.bound - 1)),))
    if isinstance(condition, ExistsTest):
        return graph.existence(obj)
    if isinstance(condition, TrueTest):
        return full
    if isinstance(condition, AndTest):
        result = full
        for part in condition.parts:
            result = result.intersect(condition_times(graph, obj, part))
            if result.is_empty():
                return result
        return result
    if isinstance(condition, OrTest):
        result = empty
        for part in condition.parts:
            result = result.union(condition_times(graph, obj, part))
        return result
    if isinstance(condition, NotTest):
        return condition_times(graph, obj, condition.inner).complement(domain)
    if isinstance(condition, PathTest):
        raise UnsupportedFragmentError(
            "path conditions (?path) are outside the dataflow fragment"
        )
    raise TypeError(f"unknown test {condition!r}")
