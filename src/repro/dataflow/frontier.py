"""Frontier rows for the dataflow chain evaluator.

A frontier row tracks one partial match while a chain is processed left
to right.  It consists of *groups*: maximal stretches of the match during
which no temporal navigation occurred.  All variables bound within a
group are valid simultaneously, so a single set of candidate time
intervals per group suffices (Step 1/2 of the paper's evaluation).  Each
temporal-navigation step closes the current group and opens a new one on
the same object; the relationship between the two groups' time points is
recorded as a :class:`TemporalLink` and enforced when the row is
materialized into point-based bindings (Step 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Optional

from repro.model.itpg import IntervalTPG
from repro.temporal.intervalset import IntervalSet

ObjectId = Hashable


@dataclass(frozen=True)
class Group:
    """Bindings sharing a single (still interval-valued) matching time."""

    bindings: tuple[tuple[str, ObjectId], ...]
    current: ObjectId
    times: IntervalSet

    def bind(self, variable: str) -> "Group":
        return Group(self.bindings + ((variable, self.current),), self.current, self.times)

    def with_current(self, obj: ObjectId, times: IntervalSet) -> "Group":
        return Group(self.bindings, obj, times)

    def with_times(self, times: IntervalSet) -> "Group":
        return Group(self.bindings, self.current, times)


@dataclass(frozen=True)
class TemporalLink:
    """Constraint between the times of two adjacent groups.

    The link is carried by the object ``obj`` (temporal navigation never
    changes the object).  If ``t`` is the time of the earlier group and
    ``t'`` the time of the later group then the constraint is
    ``lower <= delta <= upper`` with ``delta = t' - t`` when ``forward``
    and ``delta = t - t'`` otherwise; ``upper`` ``None`` means unbounded.
    When ``contiguous`` is set, every time point between ``t`` and ``t'``
    must belong to the existence of ``obj``.
    """

    obj: ObjectId
    forward: bool
    lower: int
    upper: Optional[int]
    contiguous: bool

    def admits(self, graph: IntervalTPG, t_from: int, t_to: int) -> bool:
        """Point-level check used during materialization.

        ``contiguous`` requires every *visited* point to exist — the
        anchor ``t_from`` itself is excluded (``(N/∃)[n, m]`` semantics),
        so the existence run is looked up at the first visited point.
        """
        delta = (t_to - t_from) if self.forward else (t_from - t_to)
        if delta < self.lower:
            return False
        if self.upper is not None and delta > self.upper:
            return False
        if self.contiguous and delta > 0:
            first = t_from + 1 if self.forward else t_from - 1
            run = graph.existence(self.obj).interval_containing(first)
            if run is None or t_to not in run:
                return False
        return True


@dataclass(frozen=True)
class Row:
    """One partial match: a sequence of groups joined by temporal links."""

    groups: tuple[Group, ...]
    links: tuple[TemporalLink, ...]

    @property
    def last(self) -> Group:
        return self.groups[-1]

    def replace_last(self, group: Group) -> "Row":
        return Row(self.groups[:-1] + (group,), self.links)

    def append_group(self, group: Group, link: TemporalLink) -> "Row":
        return Row(self.groups + (group,), self.links + (link,))

    def is_alive(self) -> bool:
        """A row stays in the frontier only while its last group has candidate times."""
        return not self.last.times.is_empty()

    def variable_positions(self) -> dict[str, tuple[int, ObjectId]]:
        """Map each bound variable to its group index and bound object."""
        positions: dict[str, tuple[int, ObjectId]] = {}
        for index, group in enumerate(self.groups):
            for variable, obj in group.bindings:
                positions[variable] = (index, obj)
        return positions

    def enumerate_times(self, graph: IntervalTPG) -> Iterator[tuple[int, ...]]:
        """Enumerate the group-time assignments consistent with every link.

        This is the point-wise expansion of Step 3: each yielded tuple
        assigns one time point per group.
        """
        yield from self._enumerate(graph, 0, ())

    def _enumerate(
        self, graph: IntervalTPG, index: int, prefix: tuple[int, ...]
    ) -> Iterator[tuple[int, ...]]:
        if index == len(self.groups):
            yield prefix
            return
        group = self.groups[index]
        for t in group.times.points():
            if index > 0 and not self.links[index - 1].admits(graph, prefix[-1], t):
                continue
            yield from self._enumerate(graph, index + 1, prefix + (t,))


def initial_row(obj: ObjectId, domain_times: IntervalSet) -> Row:
    """A fresh frontier row anchored at ``obj`` with the full temporal domain."""
    return Row((Group((), obj, domain_times),), ())
