"""The dataflow engine: chain execution over interval-timestamped TPGs.

:class:`DataflowEngine` compiles a MATCH clause into a chain of dataflow
steps (:mod:`repro.dataflow.steps`) and pushes a frontier of partial
matches through it:

* **Step 1 / Step 2** (interval-based): structural moves, static tests
  and temporal moves are all processed on the interval representation;
  this phase is timed separately and reported as ``interval_seconds``
  (the "interval-based time" column of Table II).
* **Step 3** (point-based): the surviving frontier rows are expanded into
  point-wise temporal bindings, enforcing the recorded temporal links;
  the combined time is ``total_seconds`` ("total time" in Table II).

The engine can partition the initial frontier across a thread pool
(``workers > 1``), mirroring the paper's Rayon-based parallelism sweep.
CPython's GIL prevents real speedups for this CPU-bound workload; the
knob exists so the Figure-3 harness can measure and report the curve
honestly.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence, Union as TypingUnion

from repro.dataflow.frontier import Group, Row, TemporalLink, initial_row
from repro.dataflow.steps import (
    AltStep,
    BindStep,
    ChainStep,
    StructStep,
    TemporalStep,
    TestStep,
    chain_has_temporal_step,
    compile_chain,
    condition_times,
)
from repro.errors import EvaluationError
from repro.eval.bindings import BindingTable
from repro.lang.ast import AndTest, NodeTest, Test
from repro.lang.parser import MatchQuery
from repro.lang.translate import CompiledMatch, compile_match
from repro.model.convert import tpg_to_itpg
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph
from repro.perf.graph_index import GraphIndex, graph_index_for
from repro.temporal.alignment import reachable_window
from repro.temporal.intervalset import IntervalSet

ObjectId = Hashable
TemporalGraph = TypingUnion[TemporalPropertyGraph, IntervalTPG]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of a dataflow evaluation, including the Table-II measurements."""

    table: BindingTable
    interval_seconds: float
    total_seconds: float
    output_size: int
    frontier_rows: int

    def as_table_row(self) -> dict[str, float | int]:
        """The three columns the paper reports per query in Table II."""
        return {
            "interval-based time (s)": round(self.interval_seconds, 6),
            "total time (s)": round(self.total_seconds, 6),
            "output size": self.output_size,
        }


class DataflowEngine:
    """Interval-based dataflow evaluation of MATCH queries (Section VI)."""

    def __init__(
        self, graph: TemporalGraph, workers: int = 1, use_index: bool = True
    ) -> None:
        # The compiled index is shared per graph across engines and queries
        # (index first, so a point-based graph is converted exactly once and
        # the conversion is reused too); ``use_index=False`` keeps the
        # uncompiled seed behaviour available so the regression benchmark can
        # measure the gap.
        self._index: GraphIndex | None = graph_index_for(graph) if use_index else None
        if self._index is not None:
            graph = self._index.graph
        elif isinstance(graph, TemporalPropertyGraph):
            graph = tpg_to_itpg(graph)
        self._graph = graph
        self._workers = max(1, int(workers))
        self._domain_times = IntervalSet((graph.domain,))

    @property
    def graph(self) -> IntervalTPG:
        return self._graph

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def index(self) -> GraphIndex | None:
        return self._index

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def match(self, query: TypingUnion[str, MatchQuery, CompiledMatch]) -> BindingTable:
        """Evaluate a MATCH clause and return its point-based binding table."""
        return self.match_with_stats(query).table

    def match_with_stats(
        self, query: TypingUnion[str, MatchQuery, CompiledMatch]
    ) -> MatchResult:
        """Evaluate a MATCH clause and return the table plus timing breakdown."""
        compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
        chain = self._compile(compiled)

        start = time.perf_counter()
        frontier = self._run_chain(chain)
        interval_seconds = time.perf_counter() - start

        rows = self._materialize(frontier, compiled.variables)
        table = BindingTable.build(compiled.variables, rows)
        total_seconds = time.perf_counter() - start
        return MatchResult(
            table=table,
            interval_seconds=interval_seconds,
            total_seconds=total_seconds,
            output_size=len(table),
            frontier_rows=len(frontier),
        )

    def match_intervals(
        self, query: TypingUnion[str, MatchQuery, CompiledMatch]
    ) -> list[tuple[tuple[tuple[str, ObjectId], ...], IntervalSet]]:
        """Coalesced (interval) output for queries without temporal navigation.

        Returns one entry per frontier row: the variable bindings and the
        shared validity interval set.  Raises :class:`EvaluationError` if
        the query navigates through time (its output cannot be coalesced,
        as discussed in Section VI).
        """
        compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
        chain = self._compile(compiled)
        if chain_has_temporal_step(chain):
            raise EvaluationError(
                "interval (coalesced) output is only defined for queries without "
                "temporal navigation"
            )
        frontier = self._run_chain(chain)
        out = []
        for row in frontier:
            positions = row.variable_positions()
            bindings = tuple(
                (variable, positions[variable][1]) for variable in compiled.variables
            )
            out.append((bindings, row.last.times))
        return out

    # ------------------------------------------------------------------ #
    # Chain compilation
    # ------------------------------------------------------------------ #
    def _compile(self, compiled: CompiledMatch) -> tuple[ChainStep, ...]:
        steps: list[ChainStep] = []
        for segment in compiled.segments:
            steps.extend(compile_chain(segment.path))
            if segment.variable:
                steps.append(BindStep(segment.variable))
        return tuple(steps)

    # ------------------------------------------------------------------ #
    # Steps 1 & 2: interval-based frontier processing
    # ------------------------------------------------------------------ #
    def _run_chain(self, chain: tuple[ChainStep, ...]) -> list[Row]:
        seeds, chain = self._initial_frontier(chain)
        if self._workers == 1 or len(seeds) < 2 * self._workers:
            return self._run_chain_on(seeds, chain)
        chunks = _split(seeds, self._workers)
        results: list[Row] = []
        with ThreadPoolExecutor(max_workers=self._workers) as pool:
            futures = [pool.submit(self._run_chain_on, chunk, chain) for chunk in chunks]
            for future in futures:
                results.extend(future.result())
        return results

    def _initial_frontier(
        self, chain: tuple[ChainStep, ...]
    ) -> tuple[list[Row], tuple[ChainStep, ...]]:
        """Seed rows plus the chain remaining after any absorbed leading test.

        With an index, a leading :class:`TestStep` is answered from the
        memoized condition table, so the frontier starts with only the
        objects that can match (and their satisfaction times) instead of
        every object of the graph.
        """
        if self._index is not None and chain and isinstance(chain[0], TestStep):
            table = self._index.condition_table(chain[0].condition)
            seeds = [
                Row((Group((), obj, times),), ()) for obj, times in table.items()
            ]
            return seeds, chain[1:]
        objects: Iterable[ObjectId]
        if chain and isinstance(chain[0], TestStep) and _requires_node(chain[0].condition):
            objects = self._graph.nodes()
        else:
            objects = self._graph.objects()
        return [initial_row(obj, self._domain_times) for obj in objects], chain

    def _run_chain_on(self, frontier: list[Row], chain: Sequence[ChainStep]) -> list[Row]:
        current = frontier
        for step in chain:
            if not current:
                break
            current = self._apply_step(current, step)
        return current

    def _apply_step(self, frontier: list[Row], step: ChainStep) -> list[Row]:
        if isinstance(step, TestStep):
            return self._apply_test(frontier, step.condition)
        if isinstance(step, StructStep):
            return self._apply_struct(frontier, step.forward)
        if isinstance(step, TemporalStep):
            return self._apply_temporal(frontier, step)
        if isinstance(step, BindStep):
            return [row.replace_last(row.last.bind(step.variable)) for row in frontier]
        if isinstance(step, AltStep):
            out: list[Row] = []
            for alternative in step.alternatives:
                out.extend(self._run_chain_on(list(frontier), alternative))
            return out
        raise TypeError(f"unknown chain step {step!r}")

    def _apply_test(self, frontier: list[Row], condition: Test) -> list[Row]:
        index = self._index
        out: list[Row] = []
        if index is not None:
            # One memoized condition table shared by every row (and every
            # later query on the same graph) replaces a per-row AST walk.
            table = index.condition_table(condition)
            for row in frontier:
                group = row.last
                satisfied = table.get(group.current)
                if satisfied is None:
                    continue
                times = group.times.intersect(satisfied)
                if times.is_empty():
                    continue
                out.append(row.replace_last(group.with_times(times)))
            return out
        graph = self._graph
        for row in frontier:
            group = row.last
            times = group.times.intersect(condition_times(graph, group.current, condition))
            if times.is_empty():
                continue
            out.append(row.replace_last(group.with_times(times)))
        return out

    def _apply_struct(self, frontier: list[Row], forward: bool) -> list[Row]:
        index = self._index
        out: list[Row] = []
        if index is not None:
            adjacency = index.out_adjacency if forward else index.in_adjacency
            endpoint = index.edge_target if forward else index.edge_source
            for row in frontier:
                group = row.last
                current = group.current
                edges = adjacency.get(current)
                if edges is not None:
                    for edge in edges:
                        out.append(row.replace_last(group.with_current(edge, group.times)))
                else:
                    out.append(
                        row.replace_last(
                            group.with_current(endpoint[current], group.times)
                        )
                    )
            return out
        graph = self._graph
        for row in frontier:
            group = row.last
            current = group.current
            if graph.is_node(current):
                edges = graph.out_edges(current) if forward else graph.in_edges(current)
                for edge in edges:
                    out.append(row.replace_last(group.with_current(edge, group.times)))
            else:
                successor = graph.target(current) if forward else graph.source(current)
                out.append(row.replace_last(group.with_current(successor, group.times)))
        return out

    def _apply_temporal(self, frontier: list[Row], step: TemporalStep) -> list[Row]:
        graph = self._graph
        index = self._index
        domain = graph.domain
        out: list[Row] = []
        for row in frontier:
            group = row.last
            if index is not None:
                existence = index.existence[group.current]
            else:
                existence = graph.existence(group.current)
            targets: list[IntervalSet] = []
            for anchor in group.times:
                for _anchor_piece, window in reachable_window(
                    anchor,
                    existence,
                    step.lower,
                    step.upper,
                    step.forward,
                    step.require_existence,
                    domain,
                ):
                    targets.append(IntervalSet((window,)))
            if not targets:
                continue
            reachable = IntervalSet.empty()
            for family in targets:
                reachable = reachable.union(family)
            link = TemporalLink(
                obj=group.current,
                forward=step.forward,
                lower=step.lower,
                upper=step.upper,
                contiguous=step.require_existence,
            )
            new_group = Group((), group.current, reachable)
            out.append(row.append_group(new_group, link))
        return out

    # ------------------------------------------------------------------ #
    # Step 3: point-wise materialization
    # ------------------------------------------------------------------ #
    def _materialize(self, frontier: list[Row], variables: tuple[str, ...]) -> list[tuple]:
        if self._workers == 1 or len(frontier) < 2 * self._workers:
            return self._materialize_rows(frontier, variables)
        chunks = _split(frontier, self._workers)
        out: list[tuple] = []
        with ThreadPoolExecutor(max_workers=self._workers) as pool:
            futures = [
                pool.submit(self._materialize_rows, chunk, variables) for chunk in chunks
            ]
            for future in futures:
                out.extend(future.result())
        return out

    def _materialize_rows(
        self, frontier: list[Row], variables: tuple[str, ...]
    ) -> list[tuple]:
        graph = self._graph
        out: list[tuple] = []
        for row in frontier:
            positions = row.variable_positions()
            missing = [v for v in variables if v not in positions]
            if missing:
                raise EvaluationError(f"variables {missing} were never bound")
            for times in row.enumerate_times(graph):
                out.append(
                    tuple(
                        (positions[v][1], times[positions[v][0]]) for v in variables
                    )
                )
        return out


# ------------------------------------------------------------------ #
# Helpers
# ------------------------------------------------------------------ #
def _requires_node(condition: Test) -> bool:
    """True if the condition conjunctively requires the object to be a node."""
    if isinstance(condition, NodeTest):
        return True
    if isinstance(condition, AndTest):
        return any(_requires_node(part) for part in condition.parts)
    return False


def _split(items: list, parts: int) -> list[list]:
    """Split a list into at most ``parts`` contiguous chunks of similar size."""
    if parts <= 1 or len(items) <= 1:
        return [items]
    size = (len(items) + parts - 1) // parts
    return [items[i : i + size] for i in range(0, len(items), size)]
