"""The dataflow engine: chain execution over interval-timestamped TPGs.

:class:`DataflowEngine` compiles a MATCH clause into a chain of dataflow
steps (:mod:`repro.dataflow.steps`) and pushes a frontier of partial
matches through it:

* **Step 1 / Step 2** (interval-based): structural moves, static tests
  and temporal moves are all processed on the interval representation;
  this phase is timed separately and reported as ``interval_seconds``
  (the "interval-based time" column of Table II).
* **Step 3** (point-based): the surviving frontier rows are expanded into
  point-wise temporal bindings, enforcing the recorded temporal links;
  the combined time is ``total_seconds`` ("total time" in Table II).

By default the frontier is the *coalescing*, set-at-a-time
:class:`~repro.dataflow.frontier2.Frontier`: after every step, rows that
agree on their binding signature are merged by unioning their validity
interval families, and Step 3 runs on the interval-native
:class:`~repro.dataflow.frontier2.IntervalMaterializer`.
``use_coalesced=False`` restores the seed behaviour — one row per
(binding, path) with point-wise link checking during materialization —
so the regression benchmarks can measure the gap.

The engine can partition the initial frontier across workers
(``workers > 1``), mirroring the paper's Rayon-based parallelism sweep.
Two backends share one degree-weighted chunking policy
(:mod:`repro.parallel.partition`):

* ``parallel_backend="thread"`` (default) — a thread pool; output-
  invariant but GIL-bound, so it measures ~1× on CPU-bound queries.
  It stays the cheap fallback for small frontiers.
* ``parallel_backend="process"`` — the :mod:`repro.parallel` subsystem:
  seed chunks run Steps 1–3 in a persistent worker-process pool (the
  graph ships to each worker once and is cached per ``(graph, pid)``),
  workers return compact interval families, and the parent performs a
  single coalescing merge.  This is the path that actually scales with
  cores, like the paper's Fig. 3.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence, Union as TypingUnion

from repro.dataflow.frontier import Group, Row, TemporalLink, initial_row
from repro.dataflow.frontier2 import (
    Frontier,
    IntervalFamily,
    IntervalMaterializer,
    RowFrontier,
)
from repro.dataflow.steps import (
    AltStep,
    BindStep,
    ChainStep,
    HopStep,
    StructStep,
    TemporalStep,
    TestStep,
    bind_group_indices,
    chain_has_temporal_step,
    compile_chain,
    condition_times,
    fuse_hops,
)
from repro.errors import EvaluationError, RetryBudgetExceeded
from repro.eval.bindings import BindingTable, IntervalBindingTable
from repro.lang.ast import AndTest, NodeTest, Test
from repro.lang.parser import MatchQuery
from repro.lang.translate import CompiledMatch, compile_match
from repro.model.convert import tpg_to_itpg
from repro.model.itpg import IntervalTPG
from repro.model.tpg import TemporalPropertyGraph
from repro.parallel.partition import chunk_weight, weighted_chunks
from repro.perf import columnar as columnar_kernel
from repro.perf.graph_index import GraphIndex, graph_index_for
from repro.resilience import failpoints
from repro.resilience.deadline import Deadline
from repro.resilience.retry import (
    AttemptRecord,
    DegradationReport,
    RetryPolicy,
    is_retryable,
)
from repro.temporal.alignment import reachable_window
from repro.temporal.intervalset import IntervalSet, IntervalSetAccumulator

ObjectId = Hashable
TemporalGraph = TypingUnion[TemporalPropertyGraph, IntervalTPG]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of a dataflow evaluation, including the Table-II measurements.

    For coalesced single-temporal-group queries (all of Q1–Q5 and the
    Q9–Q12 shapes) ``table`` is an
    :class:`~repro.eval.bindings.IntervalBindingTable`: ``total_seconds``
    then covers Steps 1–3 in the interval representation only, and the
    point rows expand lazily when the table is actually read.
    ``output_size`` is always the point-row count (computed from the
    interval families without expanding them).
    """

    table: TypingUnion[BindingTable, IntervalBindingTable]
    #: Steps 1–2 wall time.  Under the process backend this is the
    #: parallel critical path: the longest per-worker chain time, which
    #: is what the paper's per-core Fig.-3 sweep measures.
    interval_seconds: float
    total_seconds: float
    output_size: int
    #: Surviving frontier rows.  Under the process backend this sums the
    #: per-chunk frontiers, so signature-equal rows split across chunks
    #: may be counted once per chunk (the output merge still coalesces
    #: them exactly).
    frontier_rows: int
    #: How many frontier rows the coalescing frontier absorbed into
    #: signature-equal survivors across all steps (0 in legacy row mode).
    rows_merged: int = 0
    #: Set when a retry policy had to re-attempt or demote the backend
    #: (the :meth:`~repro.resilience.DegradationReport.to_dict` form);
    #: ``None`` for a clean first-attempt run.
    degradation: dict | None = None

    def as_table_row(self) -> dict[str, float | int]:
        """The three columns the paper reports per query in Table II."""
        return {
            "interval-based time (s)": round(self.interval_seconds, 6),
            "total time (s)": round(self.total_seconds, 6),
            "output size": self.output_size,
        }


class _ChainStats:
    """Mutable per-call counters threaded through the chain run."""

    __slots__ = ("rows_merged",)

    def __init__(self) -> None:
        self.rows_merged = 0


@dataclass(frozen=True)
class QueryPlan:
    """A compiled, immediately-executable plan for one query on one engine.

    Produced by :meth:`DataflowEngine.prepare` and accepted anywhere a
    query is (:meth:`match`, :meth:`match_with_stats`,
    :meth:`match_intervals`), skipping parse + translate + chain
    compilation on every reuse.  The chain is fused against the engine's
    :class:`~repro.perf.graph_index.GraphIndex`, so a plan is only valid
    for the graph (state) it was prepared on — the server keys its plan
    cache by ``(normalized query text, graph token)`` and drops entries
    when a delta rotates the token.
    """

    text: str | None
    compiled: CompiledMatch
    chain: tuple[ChainStep, ...]
    mode: str

    @property
    def variables(self) -> tuple[str, ...]:
        return self.compiled.variables


class DataflowEngine:
    """Interval-based dataflow evaluation of MATCH queries (Section VI)."""

    #: Valid values of ``parallel_backend``.
    BACKENDS = ("thread", "process")
    #: Valid values of ``kernel``.  ``"interpreted"`` is the per-row
    #: Python chain walk below (and the differential-fuzz oracle);
    #: ``"columnar"`` compiles supported chains into vectorized sweeps
    #: (:mod:`repro.perf.columnar`) and falls back to interpreted —
    #: with the reason recorded in :meth:`explain` — everywhere else.
    KERNELS = ("interpreted", "columnar")

    def __init__(
        self,
        graph: TemporalGraph,
        workers: int = 1,
        use_index: bool = True,
        use_coalesced: bool = True,
        parallel_backend: str = "thread",
        start_method: str | None = None,
        incremental: bool = False,
        deadline_seconds: float | None = None,
        retry: RetryPolicy | None = None,
        kernel: str = "interpreted",
    ) -> None:
        # The compiled index is shared per graph across engines and queries
        # (index first, so a point-based graph is converted exactly once and
        # the conversion is reused too); ``use_index=False`` keeps the
        # uncompiled seed behaviour available so the regression benchmark can
        # measure the gap.
        if parallel_backend not in self.BACKENDS:
            raise ValueError(
                f"unknown parallel backend {parallel_backend!r}: "
                f"expected one of {', '.join(repr(b) for b in self.BACKENDS)}"
            )
        if (
            start_method is not None
            and start_method not in multiprocessing.get_all_start_methods()
        ):
            raise ValueError(
                f"unknown start method {start_method!r}: this platform supports "
                f"{', '.join(multiprocessing.get_all_start_methods())}"
            )
        if kernel not in self.KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}: expected one of "
                f"{', '.join(repr(k) for k in self.KERNELS)}"
            )
        self._index: GraphIndex | None = graph_index_for(graph) if use_index else None
        if self._index is not None:
            graph = self._index.graph
        elif isinstance(graph, TemporalPropertyGraph):
            graph = tpg_to_itpg(graph)
        self._graph = graph
        workers = int(workers)
        if workers == 0:
            # ``workers=0`` means "use every core" (mirrors the CLI).
            workers = os.cpu_count() or 1
        self._workers = max(1, workers)
        self._backend = parallel_backend
        self._start_method = start_method
        self._use_coalesced = bool(use_coalesced)
        self._domain_times = IntervalSet((graph.domain,))
        self._materializer = IntervalMaterializer(graph, self._index)
        self._incremental = bool(incremental)
        #: Lazily created streaming session (``incremental=True`` only).
        self._session = None
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {deadline_seconds!r}"
            )
        #: Per-query wall-clock budget; each match call arms a fresh
        #: :class:`~repro.resilience.Deadline` from it.
        self._deadline_seconds = deadline_seconds
        self._deadline: Deadline | None = None
        #: ``None`` keeps the seed fail-fast behaviour; a
        #: :class:`~repro.resilience.RetryPolicy` turns crash-shaped
        #: process-backend failures into retries + backend demotion.
        self._retry = retry
        #: How the most recent resilient run actually executed.
        self._last_degradation: DegradationReport | None = None
        self._kernel = kernel
        #: Configuration-level reason the columnar kernel can never run
        #: on this engine (``None`` when it can; per-query step-shape
        #: fallbacks are decided later, in :meth:`_columnar_plan`).
        self._kernel_unavailable: str | None = None
        if kernel == "columnar":
            if not columnar_kernel.available():
                self._kernel_unavailable = "numpy is not installed"
            elif not self._use_coalesced:
                self._kernel_unavailable = (
                    "columnar kernel requires the coalescing frontier"
                )
            elif self._index is None:
                self._kernel_unavailable = (
                    "columnar kernel requires the compiled graph index"
                )
        #: Cached :class:`~repro.perf.columnar.ColumnarContext`, keyed by
        #: the index's maintenance epoch (deltas invalidate it wholesale).
        self._columnar_ctx = None

    @property
    def graph(self) -> IntervalTPG:
        return self._graph

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def parallel_backend(self) -> str:
        return self._backend

    @property
    def index(self) -> GraphIndex | None:
        return self._index

    @property
    def use_coalesced(self) -> bool:
        return self._use_coalesced

    @property
    def kernel(self) -> str:
        return self._kernel

    @property
    def incremental(self) -> bool:
        return self._incremental

    # ------------------------------------------------------------------ #
    # Streaming session (incremental=True)
    # ------------------------------------------------------------------ #
    def streaming_session(self):
        """The engine's :class:`~repro.streaming.engine.StreamingEngine`.

        Only available on an ``incremental=True`` engine.  The session
        caches the last materialized families per registered query;
        :meth:`match` / :meth:`match_intervals` read from that cache, and
        :meth:`apply_delta` refreshes it by re-deriving only the seeds a
        delta's dirty set can reach.
        """
        if not self._incremental:
            raise EvaluationError(
                "streaming requires DataflowEngine(..., incremental=True)"
            )
        if self._session is None:
            from repro.streaming.engine import StreamingEngine

            self._session = StreamingEngine(engine=self)
        return self._session

    def apply_delta(self, batch):
        """Apply a :class:`~repro.streaming.delta.DeltaBatch` incrementally.

        Returns the session's
        :class:`~repro.streaming.engine.ApplyResult`; raises
        :class:`EvaluationError` on a non-incremental engine or an
        out-of-order batch, leaving the graph untouched.
        """
        return self.streaming_session().apply(batch)

    def _refresh_domain(self) -> None:
        """Re-derive domain-dependent engine state after a horizon advance."""
        self._domain_times = IntervalSet((self._graph.domain,))
        self._materializer = IntervalMaterializer(self._graph, self._index)

    # ------------------------------------------------------------------ #
    # Resilience: deadlines, retry, degradation
    # ------------------------------------------------------------------ #
    @property
    def deadline_seconds(self) -> float | None:
        return self._deadline_seconds

    @property
    def retry(self) -> RetryPolicy | None:
        return self._retry

    @property
    def last_degradation(self) -> DegradationReport | None:
        """How the most recent query actually executed (``None`` = clean
        first-attempt run or no resilient run yet)."""
        return self._last_degradation

    def _arm_deadline(self) -> Deadline | None:
        """Start this query's wall-clock budget (``None`` when unbounded)."""
        if self._deadline_seconds is None:
            return None
        deadline = Deadline(self._deadline_seconds)
        self._deadline = deadline
        self._materializer.deadline = deadline
        return deadline

    def _disarm_deadline(self) -> None:
        self._deadline = None
        self._materializer.deadline = None

    def _run_resilient(
        self,
        chain: tuple[ChainStep, ...],
        seeds: list[Row],
        variables: tuple[str, ...],
        mode: str,
        stats: _ChainStats,
    ) -> tuple[list, int, float]:
        """The process dispatch under the retry policy.

        Each rung of the demotion ladder gets the policy's full retry
        budget; crash-shaped failures (see
        :data:`~repro.resilience.RETRYABLE_EXCEPTIONS`) are retried with
        capped exponential backoff + jitter, then the backend demotes
        ``process → thread → serial``.  The escalation is recorded as a
        :class:`DegradationReport` on :attr:`last_degradation`.  Only a
        retryable failure *on the serial rung* (or ``degrade=False``)
        exhausts the query: that raises
        :class:`~repro.errors.RetryBudgetExceeded`.
        """
        policy = self._retry
        self._last_degradation = None
        if policy is None:
            return self._process_run(chain, seeds, variables, mode, stats)
        failures: list[AttemptRecord] = []
        ladder = ("process", "thread", "serial") if policy.degrade else ("process",)
        deadline = self._deadline
        for backend in ladder:
            delays = policy.delays()
            slept = 0.0
            attempt = 0
            while True:
                try:
                    result = self._run_on_backend(
                        backend, chain, seeds, variables, mode, stats
                    )
                    if failures:
                        self._last_degradation = DegradationReport(
                            configured_backend="process",
                            final_backend=backend,
                            failures=tuple(failures),
                        )
                    return result
                except Exception as exc:
                    if not is_retryable(exc):
                        raise
                    failures.append(
                        AttemptRecord(
                            backend=backend,
                            attempt=attempt,
                            error_type=type(exc).__name__,
                            error=str(exc),
                            delay=slept,
                        )
                    )
                attempt += 1
                delay = next(delays, None)
                if delay is None:
                    break  # budget spent on this rung: demote
                if deadline is not None:
                    # Never sleep past the deadline: better to attempt
                    # (and let the attempt notice expiry) than to burn
                    # the whole budget waiting.
                    delay = min(delay, deadline.remaining())
                time.sleep(delay)
                slept = delay
        report = DegradationReport(
            configured_backend="process",
            final_backend=ladder[-1],
            failures=tuple(failures),
        )
        self._last_degradation = report
        raise RetryBudgetExceeded(
            f"query failed on every backend rung after {len(failures)} "
            f"attempt(s) ({report.summary()}); last error: "
            f"{failures[-1].error_type}: {failures[-1].error}",
            attempts=tuple(record.to_dict() for record in failures),
        )

    def _run_on_backend(
        self,
        backend: str,
        chain: tuple[ChainStep, ...],
        seeds: list[Row],
        variables: tuple[str, ...],
        mode: str,
        stats: _ChainStats,
    ) -> tuple[list, int, float]:
        """One attempt on one rung, normalized to the process-run shape."""
        if backend == "process":
            return self._process_run(chain, seeds, variables, mode, stats)
        start = time.perf_counter()
        if mode == "families":
            # Columnar kernel over the already-built seed rows (no-op
            # unless kernel="columnar" and the chain shape is covered).
            attempt = self._columnar_rows_attempt(chain, seeds, variables, stats)
            if attempt is not None:
                data, frontier_rows = attempt
                return data, frontier_rows, time.perf_counter() - start
        if backend == "thread":
            frontier = self._run_chain_chunks(seeds, chain, stats)
        else:
            frontier = self._run_chain_on(seeds, chain, stats)
        chain_seconds = time.perf_counter() - start
        if mode == "families":
            if self._use_coalesced:
                data: list = self._materializer.families(frontier, variables)
            else:
                data = legacy_families(frontier, variables)
        else:
            data = self._materialize_rows(frontier, variables)
        return data, len(frontier), chain_seconds

    # ------------------------------------------------------------------ #
    # Columnar kernel dispatch (kernel="columnar")
    # ------------------------------------------------------------------ #
    def _columnar_context(self):
        """The engine's array image of the current index epoch."""
        index = self._index
        ctx = self._columnar_ctx
        if ctx is None or ctx.epoch != index.epoch:
            ctx = self._columnar_ctx = columnar_kernel.ColumnarContext(index)
        return ctx

    def _columnar_fallback_reason(self, chain: tuple[ChainStep, ...]) -> str | None:
        """Why this chain would run interpreted despite ``kernel="columnar"``.

        ``None`` means the columnar kernel covers the full query.  The
        reasons surface verbatim in :meth:`explain` under
        ``kernel_fallback``.
        """
        if self._kernel_unavailable is not None:
            return self._kernel_unavailable
        if self._output_mode(chain) != "families":
            return "output spans temporal groups (point mode)"
        _plan, reason = columnar_kernel.plan_query(chain)
        return reason

    def _columnar_plan(self, chain: tuple[ChainStep, ...]):
        """The full-query columnar plan, or ``None`` on any fallback."""
        if self._kernel != "columnar" or self._columnar_fallback_reason(chain):
            return None
        plan, _reason = columnar_kernel.plan_query(chain)
        return plan

    def _columnar_process_engages(self, ctx, plan) -> bool:
        """Process-pool engagement for a columnar plan, decided from the
        context's seed count without materializing Row seeds — the same
        predicate :meth:`_process_engages` applies to built frontiers."""
        return (
            self._backend == "process"
            and self._workers > 1
            and ctx.seed_count(plan) >= 2 * self._workers
        )

    def _columnar_rows_attempt(
        self,
        chain: Sequence[ChainStep],
        seeds: list[Row],
        variables: tuple[str, ...],
        stats: _ChainStats,
    ) -> tuple[list, int] | None:
        """Columnar evaluation over pre-built seed rows.

        The rows-in/families-out twin of the full-query path, used by
        the thread/serial backend rungs, the worker-pool chunks and the
        streaming engine's per-seed re-derivations.  ``None`` means the
        chain or the rows don't fit the kernel; the caller falls back to
        the interpreted chain walk.
        """
        if self._kernel != "columnar" or self._kernel_unavailable is not None:
            return None
        ops, _reason = columnar_kernel.ops_for(tuple(chain))
        if ops is None:
            return None
        result = columnar_kernel.run_rows(
            self._columnar_context(), ops, seeds, variables, self._deadline
        )
        if result is None:
            return None
        data, frontier_rows, merged = result
        stats.rows_merged += merged
        return data, frontier_rows

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def match(
        self, query: TypingUnion[str, MatchQuery, CompiledMatch, QueryPlan]
    ) -> TypingUnion[BindingTable, IntervalBindingTable]:
        """Evaluate a MATCH clause and return its binding table.

        Single-temporal-group queries on the coalescing engine return an
        :class:`~repro.eval.bindings.IntervalBindingTable` whose point
        rows expand lazily; both classes expose the same read API.
        """
        return self.match_with_stats(query).table

    def prepare(
        self, query: TypingUnion[str, MatchQuery, CompiledMatch]
    ) -> QueryPlan:
        """Compile ``query`` into a reusable :class:`QueryPlan`.

        The expensive front half of a match call — parse, translate,
        chain compilation, hop fusion against the index — done once; the
        plan replays through :meth:`match_with_stats` /
        :meth:`match_intervals` until the graph changes.
        """
        compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
        chain = self._compile(compiled)
        if isinstance(query, str):
            text: str | None = query
        else:
            text = getattr(query, "text", None)
        return QueryPlan(
            text=text, compiled=compiled, chain=chain, mode=self._output_mode(chain)
        )

    def match_with_stats(
        self,
        query: TypingUnion[str, MatchQuery, CompiledMatch, QueryPlan],
        expand_output: bool = False,
        *,
        deadline_seconds: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> MatchResult:
        """Evaluate a MATCH clause and return the table plus timing breakdown.

        With ``expand_output=True`` the point-row expansion of a lazy
        table is forced inside the timed region, so ``total_seconds``
        measures the paper's Table-II "total time" (Steps 1–3 including
        point materialization) regardless of the output representation —
        the paper-reproduction harnesses pass this; the default leaves
        single-group outputs interval-native.

        ``deadline_seconds`` / ``retry`` override the engine-level
        resilience configuration for this one call — the server maps
        per-request ``deadline`` / ``retries`` envelope fields through
        them.  The override is scoped to the call (restored on exit) and
        assumes calls on one engine are serialized, which the server's
        per-graph lock guarantees.
        """
        if deadline_seconds is not None or retry is not None:
            if deadline_seconds is not None and deadline_seconds <= 0:
                raise ValueError(
                    f"deadline_seconds must be positive, got {deadline_seconds!r}"
                )
            saved = (self._deadline_seconds, self._retry)
            if deadline_seconds is not None:
                self._deadline_seconds = deadline_seconds
            if retry is not None:
                self._retry = retry
            try:
                return self.match_with_stats(query, expand_output)
            finally:
                self._deadline_seconds, self._retry = saved
        if self._incremental:
            # Streaming mode: the session's per-seed cache answers reads;
            # the timing below measures the cache read (the evaluation
            # cost was paid at registration / by apply_delta).
            session = self.streaming_session()
            start = time.perf_counter()
            name = session.register(
                query.compiled if isinstance(query, QueryPlan) else query
            )
            table = session.table(name)
            if expand_output:
                _ = table.rows
            elapsed = time.perf_counter() - start
            return MatchResult(
                table=table,
                interval_seconds=elapsed,
                total_seconds=elapsed,
                output_size=len(table),
                frontier_rows=len(session._state(name).contributions),
            )
        if isinstance(query, QueryPlan):
            compiled, chain = query.compiled, query.chain
        else:
            compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
            chain = self._compile(compiled)
        stats = _ChainStats()
        degradation: dict | None = None

        self._arm_deadline()
        try:
            start = time.perf_counter()
            cplan = self._columnar_plan(chain)
            if cplan is not None and not self._columnar_process_engages(
                self._columnar_context(), cplan
            ):
                # Full-query columnar run: seeds come straight from the
                # context's condition CSR, never materializing Row
                # objects (the win on cheap full-scan queries).  When
                # the process pool engages, Row seeds are built below
                # and the workers run the columnar ops per chunk.
                data, frontier_rows, merged = columnar_kernel.run_query(
                    self._columnar_context(),
                    cplan,
                    compiled.variables,
                    self._deadline,
                )
                stats.rows_merged += merged
                table: TypingUnion[BindingTable, IntervalBindingTable] = (
                    IntervalBindingTable(compiled.variables, data)
                )
                interval_seconds = time.perf_counter() - start
            else:
                seeds, rest = self._initial_frontier(chain)
                if self._process_engages(seeds):
                    mode = self._output_mode(chain)
                    data, frontier_rows, chain_seconds = self._run_resilient(
                        rest, seeds, compiled.variables, mode, stats
                    )
                    if self._last_degradation is not None:
                        degradation = self._last_degradation.to_dict()
                    if mode == "families":
                        table = IntervalBindingTable(compiled.variables, data)
                    else:
                        table = BindingTable.build(compiled.variables, data)
                    interval_seconds = chain_seconds
                else:
                    frontier = self._run_chain_chunks(seeds, rest, stats)
                    interval_seconds = time.perf_counter() - start
                    table = self._build_table(chain, frontier, compiled.variables)
                    frontier_rows = len(frontier)
            if expand_output:
                _ = table.rows
            total_seconds = time.perf_counter() - start
        finally:
            self._disarm_deadline()
        return MatchResult(
            table=table,
            interval_seconds=interval_seconds,
            total_seconds=total_seconds,
            output_size=len(table),
            frontier_rows=frontier_rows,
            rows_merged=stats.rows_merged,
            degradation=degradation,
        )

    def match_intervals(
        self, query: TypingUnion[str, MatchQuery, CompiledMatch, QueryPlan]
    ) -> list[IntervalFamily]:
        """Coalesced (interval) output: one entry per binding tuple.

        This is the primary output path of the coalescing engine: each
        entry pairs the variable bindings with the coalesced family of
        times at which they all hold (:meth:`match` derives the point
        table from the same per-row families).  Defined whenever every
        variable is bound within a single temporal group — all of
        Q1–Q5, and temporal-navigation queries such as Q9–Q12 whose
        output variables precede the navigation.  Raises
        :class:`EvaluationError` when variables span temporal groups
        (their binding times are linked, not shared, as discussed in
        Section VI).
        """
        if self._incremental:
            session = self.streaming_session()
            return session.results(
                session.register(
                    query.compiled if isinstance(query, QueryPlan) else query
                )
            )
        if isinstance(query, QueryPlan):
            compiled, chain = query.compiled, query.chain
        else:
            compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
            chain = self._compile(compiled)
        stats = _ChainStats()
        if not self._use_coalesced:
            # Seed behaviour: interval output only without temporal
            # navigation.  Rows reaching the same bindings through
            # different paths are merged so the output is canonical —
            # one coalesced entry per distinct binding tuple, same as
            # the coalescing engine.
            if chain_has_temporal_step(chain):
                raise EvaluationError(
                    "interval (coalesced) output is only defined for queries "
                    "without temporal navigation"
                )
        else:
            spread = bind_group_indices(chain)
            if spread is not None and len(spread) > 1:
                raise EvaluationError(
                    "interval (coalesced) output is only defined when every "
                    "variable is bound within a single temporal group"
                )
        self._arm_deadline()
        try:
            cplan = self._columnar_plan(chain)
            if cplan is not None and not self._columnar_process_engages(
                self._columnar_context(), cplan
            ):
                families, _rows, merged = columnar_kernel.run_query(
                    self._columnar_context(),
                    cplan,
                    compiled.variables,
                    self._deadline,
                )
                stats.rows_merged += merged
                return families
            seeds, rest = self._initial_frontier(chain)
            if self._process_engages(seeds):
                families, _rows, _seconds = self._run_resilient(
                    rest, seeds, compiled.variables, "families", stats
                )
                return families
            frontier = self._run_chain_chunks(seeds, rest, stats)
            if not self._use_coalesced:
                return legacy_families(frontier, compiled.variables)
            return self._materializer.families(frontier, compiled.variables)
        finally:
            self._disarm_deadline()

    def explain(self, query: TypingUnion[str, MatchQuery, CompiledMatch]) -> dict:
        """The execution plan a :meth:`match` call would use, without running it.

        Returns a dictionary with the configured and effective backend
        (``"sequential"`` when the frontier is too small to engage any
        worker pool), the output mode (``families`` = interval-native,
        ``points``), and the degree-weighted chunk plan the partitioner
        would produce.  ``repro query … --explain`` prints this.
        """
        compiled = query if isinstance(query, CompiledMatch) else compile_match(query)
        chain = self._compile(compiled)
        seeds, rest = self._initial_frontier(chain)
        engages = self._engages(seeds)
        if engages:
            chunks = weighted_chunks(seeds, self._workers, self._seed_weight)
        else:
            chunks = [seeds]
        if self._kernel == "columnar":
            kernel_fallback = self._columnar_fallback_reason(chain)
        else:
            kernel_fallback = None
        effective_kernel = (
            "columnar"
            if self._kernel == "columnar" and kernel_fallback is None
            else "interpreted"
        )
        return {
            "backend": self._backend,
            "effective_backend": self._backend if engages else "sequential",
            "workers": self._workers,
            "start_method": self._start_method,
            "kernel": self._kernel,
            "effective_kernel": effective_kernel,
            # Why a columnar engine would run this query interpreted
            # (None = no fallback, or the kernel isn't configured).
            "kernel_fallback": kernel_fallback,
            "seed_rows": len(seeds),
            "chain_steps": len(rest),
            "output_mode": self._output_mode(chain),
            "chunks": [
                {
                    "seeds": len(chunk),
                    "weight": chunk_weight(chunk, self._seed_weight),
                }
                for chunk in chunks
            ],
            "deadline_seconds": self._deadline_seconds,
            "retry": None if self._retry is None else self._retry.to_dict(),
            # How the engine's most recent resilient run actually went —
            # retries and backend demotion leave their audit trail here.
            "last_degradation": (
                None
                if self._last_degradation is None
                else self._last_degradation.to_dict()
            ),
        }

    # ------------------------------------------------------------------ #
    # Chain compilation
    # ------------------------------------------------------------------ #
    def _compile(self, compiled: CompiledMatch) -> tuple[ChainStep, ...]:
        steps: list[ChainStep] = []
        for segment in compiled.segments:
            steps.extend(compile_chain(segment.path))
            if segment.variable:
                steps.append(BindStep(segment.variable))
        chain = tuple(steps)
        if self._use_coalesced and self._index is not None:
            # Set-at-a-time traversal core: structural hops run through the
            # index's memoized (source → target → times) tables instead of
            # materializing one frontier row per traversed edge.
            chain = fuse_hops(chain, self._index.is_static)
        return chain

    # ------------------------------------------------------------------ #
    # Steps 1 & 2: interval-based frontier processing
    # ------------------------------------------------------------------ #
    def _new_collector(self) -> TypingUnion[Frontier, RowFrontier]:
        if not self._use_coalesced:
            return RowFrontier()
        object_id = self._index.object_id if self._index is not None else None
        return Frontier(object_id)

    def _collector_for(self, step: ChainStep) -> TypingUnion[Frontier, RowFrontier]:
        """The cheapest collector that preserves the frontier invariant.

        Test, Bind and Temporal steps are injective on binding
        signatures — applied to a signature-unique frontier they cannot
        produce two signature-equal rows (a Test only narrows the last
        validity family, which the signature excludes; a Bind extends
        the bindings deterministically; a Temporal step folds the last
        family into the signature, which distinguished the inputs).
        Those steps skip the signature bookkeeping entirely; only
        structural moves, fused hops and alternatives — where distinct
        rows can converge on the same signature — pay for the
        coalescing collector.
        """
        if self._use_coalesced and isinstance(step, (StructStep, HopStep, AltStep)):
            return self._new_collector()
        return RowFrontier()

    def _run_chain(self, chain: tuple[ChainStep, ...], stats: _ChainStats) -> list[Row]:
        seeds, chain = self._initial_frontier(chain)
        return self._run_chain_chunks(seeds, chain, stats)

    def _run_chain_chunks(
        self, seeds: list[Row], chain: tuple[ChainStep, ...], stats: _ChainStats
    ) -> list[Row]:
        if not self._engages(seeds):
            return self._run_chain_on(seeds, chain, stats)
        # Degree-weighted chunks (shared with the process backend): a
        # count-based split lets one hub-heavy chunk straggle.
        chunks = weighted_chunks(seeds, self._workers, self._seed_weight)
        chunk_stats = [_ChainStats() for _ in chunks]
        with ThreadPoolExecutor(max_workers=self._workers) as pool:
            futures = [
                pool.submit(self._run_chain_on, chunk, chain, chunk_stat)
                for chunk, chunk_stat in zip(chunks, chunk_stats)
            ]
            partials = [future.result() for future in futures]
        for chunk_stat in chunk_stats:
            stats.rows_merged += chunk_stat.rows_merged
        if not self._use_coalesced:
            results: list[Row] = []
            for partial in partials:
                results.extend(partial)
            return results
        # Signature-equal rows may have landed in different chunks; one
        # final merge restores the frontier invariant.
        combined = self._new_collector()
        for partial in partials:
            for row in partial:
                combined.add(row)
        stats.rows_merged += combined.rows_merged
        return combined.rows()

    def _engages(self, seeds: list[Row]) -> bool:
        """Whether any worker pool engages for this seed frontier.

        The single engagement predicate shared by the thread path, the
        process dispatch and :meth:`explain` — small frontiers always
        run sequentially, where per-chunk overhead would dominate.
        """
        return self._workers > 1 and len(seeds) >= 2 * self._workers

    # ------------------------------------------------------------------ #
    # Process backend (repro.parallel)
    # ------------------------------------------------------------------ #
    def _process_engages(self, seeds: list[Row]) -> bool:
        """Whether this query dispatches to the worker-process pool.

        Small frontiers fall back to the sequential/thread path: the
        per-task pickling cost would dominate any win, which is exactly
        the regime where the GIL-bound backends are already fine.
        """
        return self._backend == "process" and self._engages(seeds)

    def _process_run(
        self,
        chain: tuple[ChainStep, ...],
        seeds: list[Row],
        variables: tuple[str, ...],
        mode: str,
        stats: _ChainStats,
    ) -> tuple[list, int, float]:
        """Chunked Steps 1–3 in worker processes, one coalescing merge here.

        Returns ``(data, frontier_rows, chain_seconds)`` where ``data``
        is a merged family list (``mode="families"``) or point tuples
        (``mode="points"``) and ``chain_seconds`` is the longest
        per-worker Steps-1–2 time (the parallel critical path).
        """
        from repro.parallel.merge import merge_family_chunks, merge_point_chunks
        from repro.parallel.plan import pack_seeds, plan_for
        from repro.parallel.pool import shared_pool

        # Workers replicate the effective kernel: columnar only when the
        # parent's configuration can actually run it (per-chain shape
        # fallbacks are re-decided worker-side from the same ops).
        effective_kernel = (
            "columnar"
            if self._kernel == "columnar" and self._kernel_unavailable is None
            else "interpreted"
        )
        plan = plan_for(
            self._graph,
            self._index is not None,
            self._use_coalesced,
            effective_kernel,
        )
        pool = shared_pool(self._workers, self._start_method)
        chunks = weighted_chunks(seeds, self._workers, self._seed_weight)
        packed = [pack_seeds(chunk) for chunk in chunks]
        results = pool.run_chunks(
            plan, chain, packed, mode, variables, deadline=self._deadline
        )
        stats.rows_merged += sum(result["rows_merged"] for result in results)
        frontier_rows = sum(result["frontier_rows"] for result in results)
        chain_seconds = max(result["chain_seconds"] for result in results)
        if mode == "families":
            data: list = merge_family_chunks([result["data"] for result in results])
        else:
            data = merge_point_chunks([result["data"] for result in results])
        return data, frontier_rows, chain_seconds

    def _seed_weight(self, row: Row) -> int:
        """Chunking weight of one seed row (indexed out-degree when available)."""
        obj = row.last.current
        index = self._index
        if index is not None:
            return index.seed_weight(obj)
        graph = self._graph
        if graph.is_node(obj):
            return 1 + len(graph.out_edges(obj))
        return 2

    @staticmethod
    def _row_cost(row: Row) -> int:
        """Chunking weight of one surviving row during materialization."""
        return 1 + sum(group.times.total_points() for group in row.groups)

    def _initial_frontier(
        self, chain: tuple[ChainStep, ...]
    ) -> tuple[list[Row], tuple[ChainStep, ...]]:
        """Seed rows plus the chain remaining after any absorbed leading test.

        With an index, a leading :class:`TestStep` is answered from the
        memoized condition table, so the frontier starts with only the
        objects that can match (and their satisfaction times) instead of
        every object of the graph.
        """
        if self._index is not None and chain and isinstance(chain[0], TestStep):
            table = self._index.condition_table(chain[0].condition)
            seeds = [
                Row((Group((), obj, times),), ()) for obj, times in table.items()
            ]
            return seeds, chain[1:]
        objects: Iterable[ObjectId]
        if chain and isinstance(chain[0], TestStep) and _requires_node(chain[0].condition):
            objects = self._graph.nodes()
        else:
            objects = self._graph.objects()
        return [initial_row(obj, self._domain_times) for obj in objects], chain

    def _seed_rows_for(
        self, chain: tuple[ChainStep, ...], objects: Iterable[ObjectId]
    ) -> dict[ObjectId, Row]:
        """Fresh seed rows for just ``objects`` — the per-object form of
        :meth:`_initial_frontier`, used by streaming sessions so an
        incremental update never pays for the full seed table.

        The returned rows belong to the same frontier `_initial_frontier`
        would produce (same absorbed-test times, same node restriction);
        objects that would not seed this chain are simply absent.
        """
        if self._index is not None and chain and isinstance(chain[0], TestStep):
            table = self._index.condition_table(chain[0].condition)
            rows: dict[ObjectId, Row] = {}
            for obj in objects:
                times = table.get(obj)
                if times is not None:
                    rows[obj] = Row((Group((), obj, times),), ())
            return rows
        graph = self._graph
        node_only = (
            bool(chain)
            and isinstance(chain[0], TestStep)
            and _requires_node(chain[0].condition)
        )
        rows = {}
        for obj in objects:
            if not graph.has_object(obj):
                continue
            if node_only and not graph.is_node(obj):
                continue
            rows[obj] = initial_row(obj, self._domain_times)
        return rows

    def _run_chain_on(
        self, frontier: list[Row], chain: Sequence[ChainStep], stats: _ChainStats
    ) -> list[Row]:
        current = frontier
        deadline = self._deadline
        for completed, step in enumerate(chain):
            if not current:
                break
            # Chaos hook: "sleep" models a pathologically slow step,
            # "raise" a mid-chain fault (both serial and thread rungs).
            failpoints.fire("engine.step")
            if deadline is not None:
                deadline.progress["steps_completed"] = completed
                deadline.progress["frontier_rows"] = len(current)
                deadline.check()
            collector = self._collector_for(step)
            self._apply_step(current, step, collector, stats)
            stats.rows_merged += collector.rows_merged
            current = collector.rows()
        return current

    def _apply_step(
        self,
        frontier: list[Row],
        step: ChainStep,
        out: TypingUnion[Frontier, RowFrontier],
        stats: _ChainStats,
    ) -> None:
        if isinstance(step, TestStep):
            self._apply_test(frontier, step.condition, out)
        elif isinstance(step, StructStep):
            self._apply_struct(frontier, step.forward, out)
        elif isinstance(step, HopStep):
            self._apply_hop(frontier, step, out)
        elif isinstance(step, TemporalStep):
            self._apply_temporal(frontier, step, out)
        elif isinstance(step, BindStep):
            for row in frontier:
                out.add(row.replace_last(row.last.bind(step.variable)))
        elif isinstance(step, AltStep):
            for alternative in step.alternatives:
                for row in self._run_chain_on(list(frontier), alternative, stats):
                    out.add(row)
        else:
            raise TypeError(f"unknown chain step {step!r}")

    def _apply_test(
        self,
        frontier: list[Row],
        condition: Test,
        out: TypingUnion[Frontier, RowFrontier],
    ) -> None:
        deadline = self._deadline
        index = self._index
        if index is not None:
            # One memoized condition table shared by every row (and every
            # later query on the same graph) replaces a per-row AST walk.
            table = index.condition_table(condition)
            for row in frontier:
                if deadline is not None:
                    deadline.tick()
                group = row.last
                satisfied = table.get(group.current)
                if satisfied is None:
                    continue
                times = group.times.intersect(satisfied)
                if times.is_empty():
                    continue
                out.add(row.replace_last(group.with_times(times)))
            return
        graph = self._graph
        for row in frontier:
            if deadline is not None:
                deadline.tick()
            group = row.last
            times = group.times.intersect(condition_times(graph, group.current, condition))
            if times.is_empty():
                continue
            out.add(row.replace_last(group.with_times(times)))

    def _apply_struct(
        self,
        frontier: list[Row],
        forward: bool,
        out: TypingUnion[Frontier, RowFrontier],
    ) -> None:
        deadline = self._deadline
        index = self._index
        if index is not None:
            adjacency = index.out_adjacency if forward else index.in_adjacency
            endpoint = index.edge_target if forward else index.edge_source
            for row in frontier:
                if deadline is not None:
                    deadline.tick()
                group = row.last
                current = group.current
                edges = adjacency.get(current)
                if edges is not None:
                    for edge in edges:
                        out.add(row.replace_last(group.with_current(edge, group.times)))
                else:
                    out.add(
                        row.replace_last(
                            group.with_current(endpoint[current], group.times)
                        )
                    )
            return
        graph = self._graph
        for row in frontier:
            if deadline is not None:
                deadline.tick()
            group = row.last
            current = group.current
            if graph.is_node(current):
                edges = graph.out_edges(current) if forward else graph.in_edges(current)
                for edge in edges:
                    out.add(row.replace_last(group.with_current(edge, group.times)))
            else:
                successor = graph.target(current) if forward else graph.source(current)
                out.add(row.replace_last(group.with_current(successor, group.times)))

    def _apply_hop(
        self,
        frontier: list[Row],
        step: HopStep,
        out: TypingUnion[Frontier, RowFrontier],
    ) -> None:
        """Fused structural hop through the index's memoized entries.

        Only compiled into the chain when the engine runs coalesced with
        an index (:meth:`_compile`), so ``self._index`` is always set
        here.
        """
        deadline = self._deadline
        index = self._index
        assert index is not None
        for row in frontier:
            if deadline is not None:
                deadline.tick()
            group = row.last
            entries = index.hop_entries(
                group.current,
                step.forward_in,
                step.mid_conditions,
                step.forward_out,
                step.target_conditions,
            )
            times = group.times
            for target, hop_times in entries:
                joined = times.intersect(hop_times)
                if joined.is_empty():
                    continue
                out.add(row.replace_last(group.with_current(target, joined)))

    def _apply_temporal(
        self,
        frontier: list[Row],
        step: TemporalStep,
        out: TypingUnion[Frontier, RowFrontier],
    ) -> None:
        graph = self._graph
        index = self._index
        domain = graph.domain
        # Conditions fused into the step (coalesced + indexed mode only):
        # rows whose object cannot satisfy them never reach the window
        # arithmetic below.
        condition_tables = ()
        if step.target_conditions:
            assert index is not None  # fuse_hops only runs with an index
            condition_tables = tuple(
                index.condition_table(c) for c in step.target_conditions
            )
        deadline = self._deadline
        for row in frontier:
            if deadline is not None:
                deadline.tick()
            group = row.last
            satisfied: IntervalSet | None = None
            if condition_tables:
                for table in condition_tables:
                    found = table.get(group.current)
                    if found is None:
                        satisfied = IntervalSet.empty()
                        break
                    satisfied = (
                        found if satisfied is None else satisfied.intersect(found)
                    )
                if satisfied is not None and satisfied.is_empty():
                    continue
            if index is not None:
                existence = index.existence[group.current]
            else:
                existence = graph.existence(group.current)
            accumulator = IntervalSetAccumulator()
            for anchor in group.times:
                for _anchor_piece, window in reachable_window(
                    anchor,
                    existence,
                    step.lower,
                    step.upper,
                    step.forward,
                    step.require_existence,
                    domain,
                ):
                    accumulator.add_interval(window)
            if not accumulator:
                continue
            reached = accumulator.build()
            if satisfied is not None:
                reached = reached.intersect(satisfied)
                if reached.is_empty():
                    continue
            link = TemporalLink(
                obj=group.current,
                forward=step.forward,
                lower=step.lower,
                upper=step.upper,
                contiguous=step.require_existence,
            )
            new_group = Group((), group.current, reached)
            out.add(row.append_group(new_group, link))

    # ------------------------------------------------------------------ #
    # Step 3: materialization
    # ------------------------------------------------------------------ #
    def _build_table(
        self,
        chain: tuple[ChainStep, ...],
        frontier: list[Row],
        variables: tuple[str, ...],
    ) -> TypingUnion[BindingTable, IntervalBindingTable]:
        """The output table, staying interval-native whenever possible.

        When the chain statically binds every variable within one
        temporal group (``bind_group_indices``), the coalesced engine
        returns an :class:`IntervalBindingTable` built directly from the
        materializer's families — no point expansion, no row sort;
        the family merge is global, so the table's one-entry-per-binding
        invariant holds and is never split across worker chunks.  All
        other shapes (legacy mode, group-spanning or branch-dependent
        binds) take the point-row path.
        """
        if self._output_mode(chain) == "families":
            families = self._materializer.families(frontier, variables)
            return IntervalBindingTable(variables, families)
        rows = self._materialize(frontier, variables)
        return BindingTable.build(variables, rows)

    def _output_mode(self, chain: tuple[ChainStep, ...]) -> str:
        """``"families"`` when the output can stay interval-native, else ``"points"``."""
        if self._use_coalesced:
            spread = bind_group_indices(chain)
            if spread is not None and len(spread) <= 1:
                return "families"
        return "points"

    def _materialize(self, frontier: list[Row], variables: tuple[str, ...]) -> list[tuple]:
        if not self._engages(frontier):
            return self._materialize_rows(frontier, variables)
        # Same weighted partitioner as the chain run; here the cost
        # proxy is the rows' covered time points (expansion work).
        chunks = weighted_chunks(frontier, self._workers, self._row_cost)
        out: list[tuple] = []
        with ThreadPoolExecutor(max_workers=self._workers) as pool:
            futures = [
                pool.submit(self._materialize_rows, chunk, variables) for chunk in chunks
            ]
            for future in futures:
                out.extend(future.result())
        return out

    def _materialize_rows(
        self, frontier: list[Row], variables: tuple[str, ...]
    ) -> list[tuple]:
        if self._use_coalesced:
            # Interval-native Step 3: alive/reach passes plus per-binding
            # interval families; shared with ``match_intervals``.
            return self._materializer.points(frontier, variables)
        graph = self._graph
        out: list[tuple] = []
        for row in frontier:
            positions = row.variable_positions()
            missing = [v for v in variables if v not in positions]
            if missing:
                raise EvaluationError(f"variables {missing} were never bound")
            for times in row.enumerate_times(graph):
                out.append(
                    tuple(
                        (positions[v][1], times[positions[v][0]]) for v in variables
                    )
                )
        return out


# ------------------------------------------------------------------ #
# Helpers
# ------------------------------------------------------------------ #
def legacy_families(
    rows: Iterable[Row], variables: tuple[str, ...]
) -> list[IntervalFamily]:
    """Canonical ``(bindings, times)`` families of a legacy row frontier.

    The seed engine's interval output (no temporal navigation, so every
    row is single-group): rows reaching the same bindings through
    different paths merge into one coalesced entry.  Shared between
    :meth:`DataflowEngine.match_intervals` in legacy mode and the
    process-backend workers running a legacy-configured plan.
    """
    merged: dict[tuple, IntervalSetAccumulator] = {}
    for row in rows:
        positions = row.variable_positions()
        missing = [v for v in variables if v not in positions]
        if missing:
            raise EvaluationError(f"variables {missing} were never bound")
        bindings = tuple((variable, positions[variable][1]) for variable in variables)
        accumulator = merged.get(bindings)
        if accumulator is None:
            accumulator = merged[bindings] = IntervalSetAccumulator()
        accumulator.add(row.last.times)
    return [
        (bindings, accumulator.build()) for bindings, accumulator in merged.items()
    ]


def _requires_node(condition: Test) -> bool:
    """True if the condition conjunctively requires the object to be a node."""
    if isinstance(condition, NodeTest):
        return True
    if isinstance(condition, AndTest):
        return any(_requires_node(part) for part in condition.parts)
    return False


def _split(items: list, parts: int) -> list[list]:
    """Split a list into at most ``parts`` contiguous chunks of similar size.

    The seed count-based splitter.  The hot paths now use the
    degree-weighted :func:`repro.parallel.partition.weighted_chunks`
    (count slicing lets one hub-heavy chunk straggle); this stays as the
    reference implementation its unit tests pin.
    """
    if parts <= 1 or len(items) <= 1:
        return [items]
    size = (len(items) + parts - 1) // parts
    return [items[i : i + size] for i in range(0, len(items), size)]
