"""Dataflow evaluation of TRPQs over interval-timestamped TPGs (Section VI).

The engine follows the paper's three-step strategy:

1. **Structural navigation on intervals** — edge traversals and static
   tests are evaluated directly on the interval representation; all
   variables bound within one structural stretch share a single validity
   interval (temporal alignment).
2. **Temporal navigation on intervals** — ``NEXT``/``PREV`` steps (with
   or without occurrence bounds) are turned into interval arithmetic
   over the object's existence runs; the affected bindings are split into
   *groups* related by a recorded temporal constraint.
3. **Point-wise expansion** — the final binding table is materialized by
   enumerating time points consistent with the recorded constraints.

The supported fragment is the one the paper implements: MATCH chains
whose path patterns combine structural steps, static tests and temporal
steps with occurrence indicators (all of Q1–Q12).  Structural Kleene
stars and path conditions fall back to the reference engine.
"""

from repro.dataflow.steps import compile_chain, ChainStep, condition_times
from repro.dataflow.executor import DataflowEngine, MatchResult
from repro.dataflow.frontier2 import (
    Frontier,
    IntervalMaterializer,
    RowFrontier,
    row_signature,
)
from repro.dataflow.queries import PAPER_QUERIES, PaperQuery, get_query

__all__ = [
    "compile_chain",
    "ChainStep",
    "condition_times",
    "DataflowEngine",
    "Frontier",
    "IntervalMaterializer",
    "MatchResult",
    "RowFrontier",
    "row_signature",
    "PAPER_QUERIES",
    "PaperQuery",
    "get_query",
]
