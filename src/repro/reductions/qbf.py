"""TQBF → NavL[PC,NOI]: the PSPACE-hardness gadget (Appendix C.D).

A quantified Boolean formula ``Q₁x₁ … Qₙxₙ φ(x₁,…,xₙ)`` in prenex CNF is
encoded over an ITPG with a single node ``v`` existing over
``Ω = [0, 2ⁿ − 1]``: each time point ``t`` encodes the valuation that
assigns ``x_i`` the ``i``-th bit of ``t``.  The construction has three
layers, exactly as in the appendix:

1. the *bit predicate* ``r_i`` — a path condition that holds at ``(v, t)``
   iff the ``i``-th bit of ``t`` is 1;
2. the CNF encoding ``r_φ`` — conjunctions/disjunctions of the ``r_i``;
3. the quantifier prefix ``s_i`` — existential quantifiers become a
   choice ``(N[2^{i-1}, 2^{i-1}] + N[0,0])`` inside a path condition,
   universal quantifiers are the double negation of that.

The formula is valid iff ``(v, 0, v, 0) ∈ Js₁K_C``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lang import ast
from repro.lang.ast import PathExpr, Test
from repro.model.itpg import IntervalTPG
from repro.reductions import ReductionInstance
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet

Literal = int  # +i for x_i, -i for ¬x_i (1-based, as in DIMACS)
Clause = tuple[Literal, ...]


@dataclass(frozen=True)
class QBFInstance:
    """A prenex-CNF quantified Boolean formula.

    ``quantifiers[i]`` is ``"exists"`` or ``"forall"`` for variable
    ``x_{i+1}``; ``clauses`` use DIMACS-style literals (``+i`` / ``-i``).
    """

    quantifiers: tuple[str, ...]
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for quantifier in self.quantifiers:
            if quantifier not in {"exists", "forall"}:
                raise ValueError(f"unknown quantifier {quantifier!r}")
        n = len(self.quantifiers)
        for clause in self.clauses:
            for literal in clause:
                if literal == 0 or abs(literal) > n:
                    raise ValueError(f"literal {literal} out of range for {n} variables")

    @property
    def num_variables(self) -> int:
        return len(self.quantifiers)


def bit_predicate(i: int) -> Test:
    """The test ``r_i``: the ``i``-th bit (1-based, from the right) of the time is 1."""
    power = 2 ** i
    previous_power = 2 ** (i - 1)
    return ast.path_test(
        ast.concat(
            ast.repeat(ast.repeat(ast.P, power, power), 0, None),
            ast.test(ast.and_(ast.time_lt(power), ast.not_(ast.time_lt(previous_power)))),
        )
    )


def cnf_test(clauses: Sequence[Clause]) -> Test:
    """The test ``r_φ``: the valuation encoded by the current time satisfies the CNF."""
    clause_tests: list[Test] = []
    for clause in clauses:
        literal_tests: list[Test] = []
        for literal in clause:
            predicate = bit_predicate(abs(literal))
            literal_tests.append(predicate if literal > 0 else ast.not_(predicate))
        clause_tests.append(ast.or_(*literal_tests))
    if not clause_tests:
        return ast.exists()
    return ast.and_(*clause_tests)


def qbf_reduction(instance: QBFInstance) -> ReductionInstance:
    """Build the Appendix C.D gadget; the answer is membership of ``(v,0,v,0)``."""
    n = instance.num_variables
    domain = Interval(0, max(2 ** n - 1, 1))
    graph = IntervalTPG(domain)
    graph.add_node("v", "l", IntervalSet((domain,)))

    # s_{n+1} is the CNF test; s_i wraps s_{i+1} with the quantifier for x_i.
    current: Test = cnf_test(instance.clauses)
    for i in range(n, 0, -1):
        step = 2 ** (i - 1)
        move = ast.union(ast.repeat(ast.N, step, step), ast.repeat(ast.N, 0, 0))
        if instance.quantifiers[i - 1] == "exists":
            current = ast.path_test(ast.concat(move, ast.test(current)))
        else:
            current = ast.not_(
                ast.path_test(ast.concat(move, ast.test(ast.not_(current))))
            )

    path: PathExpr = ast.test(current)
    return ReductionInstance(
        graph=graph,
        path=path,
        source=("v", 0),
        target=("v", 0),
        description=f"TQBF({' '.join(instance.quantifiers)}, {len(instance.clauses)} clauses)",
    )


def solve_qbf(instance: QBFInstance) -> bool:
    """Brute-force QBF solver used to cross-check the gadget."""
    return _solve(instance, 0, {})


def _solve(instance: QBFInstance, index: int, assignment: dict[int, bool]) -> bool:
    if index == instance.num_variables:
        return _evaluate_cnf(instance.clauses, assignment)
    variable = index + 1
    outcomes = []
    for value in (False, True):
        assignment[variable] = value
        outcomes.append(_solve(instance, index + 1, assignment))
    del assignment[variable]
    if instance.quantifiers[index] == "exists":
        return any(outcomes)
    return all(outcomes)


def _evaluate_cnf(clauses: Sequence[Clause], assignment: dict[int, bool]) -> bool:
    for clause in clauses:
        satisfied = False
        for literal in clause:
            value = assignment[abs(literal)]
            if (literal > 0 and value) or (literal < 0 and not value):
                satisfied = True
                break
        if not satisfied:
            return False
    return True
