"""SUBSET-SUM → NavL[ANOI]: the NP-hardness gadget of Theorem D.1.

Given a set ``A = {a_1, …, a_n} ⊂ ℕ`` and a target ``S``, build the ITPG
``C`` consisting of a single node ``v`` existing over ``Ω = [0, S]`` with
no edges or properties, and the expression::

    r = (N[a_1, a_1] + N[0, 0]) / … / (N[a_n, a_n] + N[0, 0])

Then ``(v, 0, v, S) ∈ JrK_C`` if and only if some subset of ``A`` sums to
``S``: each factor either advances time by ``a_i`` (the element is taken)
or stays put (it is not).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lang import ast
from repro.model.itpg import IntervalTPG
from repro.reductions import ReductionInstance
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet


def subset_sum_reduction(numbers: Sequence[int], target: int) -> ReductionInstance:
    """Build the Theorem-D.1 gadget for the SUBSET-SUM instance ``(numbers, target)``."""
    if target < 0:
        raise ValueError("the SUBSET-SUM target must be non-negative")
    if any(a < 0 for a in numbers):
        raise ValueError("SUBSET-SUM elements must be non-negative")
    domain = Interval(0, max(target, 1))
    graph = IntervalTPG(domain)
    graph.add_node("v", "l", IntervalSet((domain,)))

    factors = [
        ast.union(ast.repeat(ast.N, a, a), ast.repeat(ast.N, 0, 0)) for a in numbers
    ]
    path = ast.concat(*factors) if factors else ast.test(ast.exists())
    return ReductionInstance(
        graph=graph,
        path=path,
        source=("v", 0),
        target=("v", target),
        description=f"SUBSET-SUM({list(numbers)}, S={target})",
    )


def solve_subset_sum(numbers: Iterable[int], target: int) -> bool:
    """Brute-force dynamic-programming solver used to cross-check the gadget."""
    reachable = {0}
    for a in numbers:
        reachable |= {r + a for r in reachable if r + a <= target}
    return target in reachable
