"""Executable hardness reductions from the paper's appendix.

Each module constructs, from an instance of a classical decision
problem, an ITPG *gadget* and a NavL expression whose tuple-membership
answer equals the answer of the instance:

* :mod:`repro.reductions.subset_sum` — SUBSET-SUM → NavL[ANOI]
  (NP-hardness, Theorem D.1);
* :mod:`repro.reductions.gsubset_sum` — Generalized SUBSET-SUM →
  NavL[NOI] (Σᵖ₂-hardness, Appendix C.C);
* :mod:`repro.reductions.qbf` — TQBF → NavL[PC,NOI]
  (PSPACE-hardness, Appendix C.D).

The gadgets serve two purposes: they are end-to-end tests of the tuple
checkers on adversarial expressions, and they demonstrate that the
constructions in the proofs are effectively computable (every instance
below also has a brute-force solver for cross-checking).
"""

from dataclasses import dataclass
from typing import Hashable

from repro.lang.ast import PathExpr
from repro.model.itpg import IntervalTPG


@dataclass(frozen=True)
class ReductionInstance:
    """The output of a hardness reduction: graph, expression and endpoints."""

    graph: IntervalTPG
    path: PathExpr
    source: tuple[Hashable, int]
    target: tuple[Hashable, int]
    description: str = ""


from repro.reductions.subset_sum import subset_sum_reduction, solve_subset_sum  # noqa: E402
from repro.reductions.gsubset_sum import gsubset_sum_reduction, solve_gsubset_sum  # noqa: E402
from repro.reductions.qbf import qbf_reduction, solve_qbf, QBFInstance  # noqa: E402

__all__ = [
    "ReductionInstance",
    "subset_sum_reduction",
    "solve_subset_sum",
    "gsubset_sum_reduction",
    "solve_gsubset_sum",
    "qbf_reduction",
    "solve_qbf",
    "QBFInstance",
]
