"""Generalized SUBSET-SUM → NavL[NOI]: the Σᵖ₂-hardness gadget (Appendix C.C).

The Generalized Subset Sum problem asks, given natural-number vectors
``u`` and ``w`` and a target ``S``, whether there is an ``x ∈ {0,1}^|u|``
such that for **all** ``y ∈ {0,1}^|w|`` it holds that
``x·u + y·w ≠ S``.  The reduction builds an ITPG with a single node ``v``
over ``Ω = [0, 2M]`` with ``M = 2·(Σu + Σw)`` and an expression ``r``
such that ``(v, M, v, 2M) ∈ JrK_C`` iff the instance is a yes-instance:

* ``r_u`` existentially chooses which ``u_i`` to add (``N[u_i,u_i][0,1]``);
* the recursively defined ``r_j`` expressions sweep every combination of
  the ``w_j`` additions, checking at the innermost level that the
  accumulated sum differs from ``S`` (a universal check realized by the
  determinism of the time line);
* the suffix ``N[0,_]/(¬ < 2M)`` finally moves to the right endpoint.
"""

from __future__ import annotations

from typing import Sequence

from repro.lang import ast
from repro.lang.ast import PathExpr
from repro.model.itpg import IntervalTPG
from repro.reductions import ReductionInstance
from repro.temporal.interval import Interval
from repro.temporal.intervalset import IntervalSet


def gsubset_sum_reduction(
    u: Sequence[int], w: Sequence[int], target: int
) -> ReductionInstance:
    """Build the Appendix C.C gadget for the G-SUBSET-SUM instance ``(u, w, target)``."""
    if any(value < 0 for value in list(u) + list(w)) or target < 0:
        raise ValueError("G-SUBSET-SUM inputs must be non-negative")
    magnitude = 2 * (sum(u) + sum(w))
    magnitude = max(magnitude, target + 1, 1)
    domain = Interval(0, 2 * magnitude)
    graph = IntervalTPG(domain)
    graph.add_node("v", "l", IntervalSet((domain,)))

    # r_u: existential choice over the components of u.
    u_factors = [ast.repeat(ast.repeat(ast.N, value, value), 0, 1) for value in u]
    r_u: PathExpr = ast.concat(*u_factors) if u_factors else ast.test(ast.exists())

    # r_0: the accumulated sum is not S (time point differs from S + M).
    not_target = ast.test(
        ast.or_(ast.time_lt(target + magnitude), ast.not_(ast.time_lt(target + magnitude + 1)))
    )

    # r_{j+1} from r_j: sweep both choices for w_{j+1}.
    r_w: PathExpr = not_target
    for value in w:
        shifted = ast.concat(
            ast.repeat(ast.N, value, value),
            r_w,
            ast.repeat(ast.P, 2 * value, 2 * value),
        )
        r_w = ast.concat(
            ast.repeat(shifted, 2, 2), ast.repeat(ast.N, 2 * value, 2 * value)
        )

    path = ast.concat(
        r_u,
        r_w,
        ast.repeat(ast.N, 0, None),
        ast.test(ast.not_(ast.time_lt(2 * magnitude))),
    )
    return ReductionInstance(
        graph=graph,
        path=path,
        source=("v", magnitude),
        target=("v", 2 * magnitude),
        description=f"G-SUBSET-SUM(u={list(u)}, w={list(w)}, S={target})",
    )


def solve_gsubset_sum(u: Sequence[int], w: Sequence[int], target: int) -> bool:
    """Brute-force solver: ∃x ∀y  x·u + y·w ≠ S."""
    def subset_sums(values: Sequence[int]) -> set[int]:
        sums = {0}
        for value in values:
            sums |= {s + value for s in sums}
        return sums

    u_sums = subset_sums(u)
    w_sums = subset_sums(w)
    return any(all(su + sw != target for sw in w_sums) for su in u_sums)
