"""Exception hierarchy for the TRPQ reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing the specific failure modes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class InvalidIntervalError(ReproError, ValueError):
    """An interval or interval family violates its invariants."""


class GraphIntegrityError(ReproError, ValueError):
    """A temporal property graph violates the conditions of Definition III.1 / A.1."""


class UnknownObjectError(ReproError, KeyError):
    """A node or edge identifier is not present in the graph."""


class QuerySyntaxError(ReproError, ValueError):
    """A practical-syntax path expression or MATCH clause could not be parsed."""


class QueryTranslationError(ReproError, ValueError):
    """A practical-syntax construct could not be translated to NavL[PC,NOI]."""


class UnsupportedFragmentError(ReproError, ValueError):
    """A query uses operators outside the fragment supported by an engine."""


class EvaluationError(ReproError, RuntimeError):
    """An evaluation engine failed while processing a well-formed query."""
