"""Exception hierarchy for the TRPQ reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing the specific failure modes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class InvalidIntervalError(ReproError, ValueError):
    """An interval or interval family violates its invariants."""


class GraphIntegrityError(ReproError, ValueError):
    """A temporal property graph violates the conditions of Definition III.1 / A.1."""


class UnknownObjectError(ReproError, KeyError):
    """A node or edge identifier is not present in the graph."""


class QuerySyntaxError(ReproError, ValueError):
    """A practical-syntax path expression or MATCH clause could not be parsed."""


class QueryTranslationError(ReproError, ValueError):
    """A practical-syntax construct could not be translated to NavL[PC,NOI]."""


class UnsupportedFragmentError(ReproError, ValueError):
    """A query uses operators outside the fragment supported by an engine."""


class EvaluationError(ReproError, RuntimeError):
    """An evaluation engine failed while processing a well-formed query."""


class WorkerCrashError(EvaluationError):
    """A worker process of the parallel backend died mid-query.

    Subclasses :class:`EvaluationError` so existing callers that treat a
    crash as an evaluation failure keep working; the resilience runtime
    (:mod:`repro.resilience.retry`) additionally recognizes it as a
    *retryable* failure — the crashed pool has been retired, so a retry
    transparently gets a fresh one.
    """


class DeadlineExceeded(ReproError, TimeoutError):
    """A query ran past its configured deadline and was cancelled.

    Carries structured context so callers can report partial progress:

    * ``deadline_seconds`` — the configured budget;
    * ``elapsed`` — wall-clock seconds when the deadline fired;
    * ``partial`` — a dictionary of progress counters recorded at the
      cancellation point (steps completed, rows merged, backend, …).
    """

    def __init__(
        self,
        message: str,
        *,
        deadline_seconds: float = 0.0,
        elapsed: float = 0.0,
        partial: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.deadline_seconds = deadline_seconds
        self.elapsed = elapsed
        self.partial = dict(partial or {})


class RetryBudgetExceeded(EvaluationError):
    """Every retry (and, if enabled, every degraded backend) failed.

    ``attempts`` carries the per-attempt failure records so operators can
    see the whole escalation path in one place.
    """

    def __init__(self, message: str, attempts: tuple = ()) -> None:
        super().__init__(message)
        self.attempts = tuple(attempts)


class WALError(ReproError, RuntimeError):
    """A write-ahead log could not be read or written."""


class WALCorruptError(WALError):
    """A WAL record failed its checksum or framing mid-file.

    A *torn final record* (interrupted last append) is expected after a
    crash and is tolerated by recovery; corruption anywhere before the
    tail means the log cannot be trusted and raises this error with the
    file/line context attached.
    """

    def __init__(self, message: str, *, path: str = "", line: int = 0) -> None:
        super().__init__(message)
        self.path = path
        self.line = line


class StreamFormatError(ReproError, ValueError):
    """A delta-stream line was malformed or out of order.

    Structured variant of the raw parse errors: carries the stream
    ``path``, 1-based ``line`` number and, when known, the batch
    ``sequence``, so callers can point at the offending record without
    re-parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str = "",
        line: int = 0,
        sequence: int | None = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.line = line
        self.sequence = sequence


class InjectedFault(ReproError, RuntimeError):
    """A deterministic fault raised by an armed failpoint (tests only).

    Never raised in production paths: it exists so the chaos suite can
    tell injected failures apart from real ones, while the retry policy
    still treats it as retryable.
    """


class StoreError(ReproError, RuntimeError):
    """A persistent compiled-index artifact could not be written or attached."""


class StoreFormatError(StoreError):
    """A file is not a ``repro-index`` artifact (bad magic or malformed header).

    ``path`` names the offending file so multi-shard attach failures can
    point at the exact member.
    """

    def __init__(self, message: str, *, path: str = "") -> None:
        super().__init__(message)
        self.path = path


class StoreVersionError(StoreFormatError):
    """An artifact was written by an incompatible format version.

    Carries the ``found`` and ``expected`` version numbers so callers
    can report an actionable recompile message without parsing text.
    """

    def __init__(
        self, message: str, *, path: str = "", found: int = 0, expected: int = 0
    ) -> None:
        super().__init__(message, path=path)
        self.found = found
        self.expected = expected


class StoreCorruptError(StoreError):
    """An artifact failed a checksum or is truncated mid-section.

    ``section`` names the flat section whose CRC failed (empty when the
    damage is structural — e.g. a section table pointing past the end of
    the file).
    """

    def __init__(self, message: str, *, path: str = "", section: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.section = section


class ConnectionClosed(ReproError, ConnectionError):
    """The server closed (or lost) the connection mid-request.

    Raised client-side when a response line is empty or truncated —
    the signature of a server that died, drained, or dropped the socket
    between request and response.  Subclasses :class:`ConnectionError`
    so generic socket handling keeps working, and :class:`ReproError` so
    one ``except`` clause covers the library.  Idempotent requests are
    safe to retry on another endpoint; the failover client does exactly
    that.
    """


class ServerError(ReproError, RuntimeError):
    """A query-service request failed on the server side.

    Raised client-side (:mod:`repro.server.client`) when a response
    envelope carries ``ok: false``; ``kind`` is the server-reported error
    type (e.g. ``"QuerySyntaxError"``, ``"DeadlineExceeded"``,
    ``"Overloaded"``) so callers can branch without string matching.
    """

    def __init__(self, message: str, *, kind: str = "ServerError") -> None:
        super().__init__(message)
        self.kind = kind


class Overloaded(ServerError):
    """The service rejected a request under backpressure.

    The queue of admitted-but-unfinished requests was at ``max_queue``;
    the client should back off and retry — the request was never
    started, so retrying is always safe.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, kind="Overloaded")


class NotPrimary(ServerError):
    """A write op was sent to a standby replica.

    Standbys serve read-only traffic; writes (``apply_delta``,
    ``register``) must go to the primary.  ``primary`` carries the
    primary's advertised ``host:port`` when the standby knows it, so
    clients can re-route without an extra discovery round trip — the
    failover client does exactly that.
    """

    def __init__(self, message: str, *, primary: str | None = None) -> None:
        super().__init__(message, kind="NotPrimary")
        self.primary = primary
